// LiveTransport: the sim::Transport backend that carries the closed
// protocol variants over a real non-blocking UDP socket.
//
// One LiveTransport hosts one endpoint (one process = one node, plus the
// driver's control endpoint-less instance). The surface is exactly the
// simulated Network's: `send` is fire-and-forget, `exchangeAsync` (via
// `callAsyncErased`) completes with the typed response or nullopt. Under
// the hood:
//
//  * every outgoing request carries a fresh callId; the matching response
//    settles the pending entry and fires the handler;
//  * an unanswered request is retransmitted with bounded exponential
//    backoff (retryBaseMs, doubling, capped at retryCapMs, at most
//    retryMax attempts) and then settled nullopt — the same observable
//    timeout semantics as the simulated lane;
//  * the responder keeps a bounded reply cache keyed by (caller, callId)
//    so a retransmitted request is answered with the cached bytes instead
//    of re-running onRpc (at-least-once delivery, exactly-once service);
//  * malformed/foreign datagrams are counted and dropped, never crash
//    (`decodeFailures` is the live lane's "hash check failures" metric —
//    the cross-validation asserts it is zero on loopback).
//
// The owner drives everything by calling poll() from its event loop; there
// are no threads in here.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "net/udp_socket.hpp"
#include "net/wire_codec.hpp"
#include "sim/network.hpp"
#include "sim/transport.hpp"

namespace avmon::net {

/// Retry/backoff knobs (wall milliseconds). Spec keys `udp.*` map here.
struct LiveConfig {
  std::uint32_t retryMax = 4;   ///< total attempts per request (>= 1)
  std::int64_t retryBaseMs = 50;   ///< first-attempt timeout
  std::int64_t retryCapMs = 800;   ///< backoff ceiling per attempt
  std::size_t replyCacheCap = 1024;  ///< responder-side dedup entries
};

/// Wire-level counters, distinct from the protocol-level TrafficCounters
/// (which mirror the simulated lane's declared-byte accounting).
struct LiveCounters {
  std::uint64_t datagramsSent = 0;
  std::uint64_t datagramsReceived = 0;
  std::uint64_t decodeFailures = 0;  ///< checksum/garbage/unknown-tag drops
  std::uint64_t sendErrors = 0;
  std::uint64_t rpcCalls = 0;
  std::uint64_t rpcRetries = 0;
  std::uint64_t rpcTimeouts = 0;  ///< exchanges settled with nullopt
  std::uint64_t rpcServed = 0;
  std::uint64_t duplicateRequests = 0;  ///< answered from the reply cache
  std::uint64_t messagesDropped = 0;    ///< received while down/unattached
};

/// Driver-side hooks for the out-of-band control plane.
using ControlHandler =
    std::function<void(const NodeId& from, const ControlCommand& command)>;
using AckHandler = std::function<void(const NodeId& from, std::uint64_t seq)>;

class LiveTransport final : public sim::Transport {
 public:
  explicit LiveTransport(LiveConfig config) : config_(config) {}

  /// Binds the UDP socket under `self` — in the live lane the NodeId IS
  /// the socket address. Must succeed before any traffic. Port 0 picks an
  /// ephemeral port; local() reports the resolved identity.
  bool open(const NodeId& self);
  const NodeId& local() const noexcept { return socket_.local(); }

  // ---- sim::Transport ----

  /// Registers the single hosted endpoint. `id` must equal local().
  void attach(const NodeId& id, sim::Endpoint& endpoint) override;
  void detach(const NodeId& id) override;
  void setUp(const NodeId& id, bool up) override;
  bool isUp() const noexcept { return up_; }

  void send(const NodeId& from, const NodeId& to,
            sim::Message message) override;
  void callAsyncErased(const NodeId& from, const NodeId& to,
                       sim::RpcRequest request,
                       sim::RpcHandler handler) override;

  // ---- control plane ----

  void setControlHandler(ControlHandler handler) {
    controlHandler_ = std::move(handler);
  }
  void setAckHandler(AckHandler handler) { ackHandler_ = std::move(handler); }

  /// Fire-and-forget control command (the caller owns retry-until-ack).
  void sendControl(const NodeId& to, std::uint64_t seq,
                   const ControlCommand& command);

  // ---- event loop ----

  /// Settles due retries/timeouts, then drains readable datagrams, waiting
  /// up to `maxWaitMs` for the first one (0 = non-blocking pass). Returns
  /// the number of frames dispatched.
  std::size_t poll(int maxWaitMs);

  /// Wall ms until the earliest pending retry/timeout deadline, or -1 when
  /// nothing is pending — the owner caps its poll wait with this.
  std::int64_t msUntilDeadline(std::int64_t nowMs) const;

  const LiveCounters& counters() const noexcept { return counters_; }

  /// Declared-byte outgoing accounting, mirroring the simulated lane (the
  /// request leg is charged once per exchange, not per retransmission, so
  /// bandwidth numbers are comparable across lanes).
  const sim::TrafficCounters& traffic() const noexcept { return traffic_; }

 private:
  struct PendingCall {
    NodeId to;
    std::vector<std::uint8_t> frame;
    sim::RpcHandler handler;
    std::uint32_t attemptsLeft = 0;
    std::int64_t timeoutMs = 0;
    std::int64_t deadlineMs = 0;
  };

  void sendBytes(const NodeId& to, const std::vector<std::uint8_t>& bytes);
  void handleFrame(const Frame& frame);
  void serveRequest(const Frame& frame);

  LiveConfig config_;
  UdpSocket socket_;
  sim::Endpoint* endpoint_ = nullptr;
  bool up_ = false;

  std::uint64_t nextCallId_ = 1;
  // Ordered map: deadline scans iterate deterministically and the linter
  // stays quiet; size is the handful of in-flight exchanges per tick.
  std::map<std::uint64_t, PendingCall> pending_;

  // Responder-side reply cache: (caller, callId) -> encoded response.
  std::map<std::pair<NodeId, std::uint64_t>, std::vector<std::uint8_t>>
      replyCache_;
  std::deque<std::pair<NodeId, std::uint64_t>> replyCacheOrder_;

  ControlHandler controlHandler_;
  AckHandler ackHandler_;
  LiveCounters counters_;
  sim::TrafficCounters traffic_;
};

}  // namespace avmon::net
