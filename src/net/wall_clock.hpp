// The live-wire lane's one wall-clock read. Everything in src/net that
// needs real time goes through wallNowMs() so the determinism linter sees
// exactly one reasoned wall-clock site in the whole subsystem (the lint
// scope policy confines wall-clock allows to the live lane — see
// tools/avmon_lint).
#pragma once

#include <chrono>
#include <cstdint>

namespace avmon::net {

/// Monotonic wall time in milliseconds (arbitrary epoch). The live lane's
/// timers, retries, and the scaled simulator clock all derive from this.
inline std::int64_t wallNowMs() {
  // lint:allow(wall-clock, live-wire lane: real elapsed time is the clock that drives the scaled simulator and RPC retry deadlines; never linked into the simulated lane)
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

}  // namespace avmon::net
