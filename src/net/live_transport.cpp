#include "net/live_transport.hpp"

#include <algorithm>
#include <cassert>

#include "net/wall_clock.hpp"

namespace avmon::net {

bool LiveTransport::open(const NodeId& self) { return socket_.open(self); }

void LiveTransport::attach(const NodeId& id, sim::Endpoint& endpoint) {
  assert(id == socket_.local() &&
         "LiveTransport hosts exactly the node whose id it is bound under");
  (void)id;
  endpoint_ = &endpoint;
}

void LiveTransport::detach(const NodeId& id) {
  (void)id;
  endpoint_ = nullptr;
  up_ = false;
}

void LiveTransport::setUp(const NodeId& id, bool up) {
  (void)id;
  up_ = up;
}

void LiveTransport::send(const NodeId& from, const NodeId& to,
                         sim::Message message) {
  traffic_.bytesSent += sim::wireBytes(message);
  traffic_.messagesSent += 1;
  sendBytes(to, encodeMessage(from, message));
}

void LiveTransport::callAsyncErased(const NodeId& from, const NodeId& to,
                                    sim::RpcRequest request,
                                    sim::RpcHandler handler) {
  // Request leg charged unconditionally, exactly like the simulated lane.
  traffic_.bytesSent += sim::requestWireBytes(request);
  traffic_.messagesSent += 1;
  counters_.rpcCalls += 1;

  const std::uint64_t callId = nextCallId_++;
  PendingCall call;
  call.to = to;
  call.frame = encodeRequest(from, callId, request);
  call.handler = std::move(handler);
  call.attemptsLeft = config_.retryMax > 0 ? config_.retryMax - 1 : 0;
  call.timeoutMs = config_.retryBaseMs;
  call.deadlineMs = wallNowMs() + call.timeoutMs;
  sendBytes(to, call.frame);
  pending_.emplace(callId, std::move(call));
}

void LiveTransport::sendControl(const NodeId& to, std::uint64_t seq,
                                const ControlCommand& command) {
  sendBytes(to, encodeControl(socket_.local(), seq, command));
}

void LiveTransport::sendBytes(const NodeId& to,
                              const std::vector<std::uint8_t>& bytes) {
  if (socket_.sendTo(to, bytes.data(), bytes.size())) {
    counters_.datagramsSent += 1;
  } else {
    counters_.sendErrors += 1;
  }
}

std::int64_t LiveTransport::msUntilDeadline(std::int64_t nowMs) const {
  if (pending_.empty()) return -1;
  std::int64_t earliest = -1;
  for (const auto& entry : pending_) {
    const std::int64_t left = entry.second.deadlineMs - nowMs;
    if (earliest < 0 || left < earliest) earliest = left;
  }
  return std::max<std::int64_t>(earliest, 0);
}

std::size_t LiveTransport::poll(int maxWaitMs) {
  // Phase 1: settle due retries/timeouts. Handlers may issue new calls
  // (mutating pending_), so collect first, fire after.
  const std::int64_t now = wallNowMs();
  std::vector<sim::RpcHandler> expired;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingCall& call = it->second;
    if (call.deadlineMs > now) {
      ++it;
      continue;
    }
    if (call.attemptsLeft > 0) {
      call.attemptsLeft -= 1;
      call.timeoutMs = std::min(call.timeoutMs * 2, config_.retryCapMs);
      call.deadlineMs = now + call.timeoutMs;
      counters_.rpcRetries += 1;
      sendBytes(call.to, call.frame);
      ++it;
      continue;
    }
    counters_.rpcTimeouts += 1;
    expired.push_back(std::move(call.handler));
    it = pending_.erase(it);
  }
  for (auto& handler : expired) handler(std::nullopt);

  // Phase 2: drain readable datagrams, blocking up to maxWaitMs for the
  // first one only.
  std::size_t dispatched = expired.size();
  std::uint8_t buf[kMaxFrameBytes + 1];
  bool first = true;
  for (;;) {
    auto datagram = socket_.recvFrom(buf, sizeof(buf));
    if (!datagram) {
      if (first && maxWaitMs > 0 && socket_.waitReadable(maxWaitMs)) {
        first = false;
        continue;
      }
      break;
    }
    first = false;
    counters_.datagramsReceived += 1;
    const auto frame = decodeFrame(buf, datagram->size);
    if (!frame) {
      counters_.decodeFailures += 1;
      continue;
    }
    handleFrame(*frame);
    dispatched += 1;
  }
  return dispatched;
}

void LiveTransport::handleFrame(const Frame& frame) {
  switch (frame.kind) {
    case FrameKind::kOneWay:
      if (endpoint_ != nullptr && up_) {
        endpoint_->onMessage(frame.sender, *frame.message);
      } else {
        counters_.messagesDropped += 1;
      }
      break;
    case FrameKind::kRpcRequest:
      serveRequest(frame);
      break;
    case FrameKind::kRpcResponse: {
      auto it = pending_.find(frame.callId);
      if (it == pending_.end()) break;  // late duplicate; already settled
      sim::RpcHandler handler = std::move(it->second.handler);
      pending_.erase(it);
      handler(*frame.response);
      break;
    }
    case FrameKind::kControl:
      // Always acked (the control plane is out-of-band and must stay
      // reliable even while the node is down); commands are idempotent.
      sendBytes(frame.sender, encodeControlAck(socket_.local(), frame.callId));
      if (controlHandler_) controlHandler_(frame.sender, *frame.control);
      break;
    case FrameKind::kControlAck:
      if (ackHandler_) ackHandler_(frame.sender, frame.callId);
      break;
  }
}

void LiveTransport::serveRequest(const Frame& frame) {
  // Down/unattached nodes answer nothing — the caller's retry/timeout
  // ladder reports it, matching the simulated semantics.
  if (endpoint_ == nullptr || !up_) {
    counters_.messagesDropped += 1;
    return;
  }
  const auto key = std::make_pair(frame.sender, frame.callId);
  auto cached = replyCache_.find(key);
  if (cached != replyCache_.end()) {
    counters_.duplicateRequests += 1;
    sendBytes(frame.sender, cached->second);
    return;
  }
  const sim::RpcResponse response =
      endpoint_->onRpc(frame.sender, *frame.request);
  // Response leg charged only on service, like the simulated lane.
  traffic_.bytesSent += sim::responseWireBytes(*frame.request);
  traffic_.messagesSent += 1;
  counters_.rpcServed += 1;

  auto bytes = encodeResponse(socket_.local(), frame.callId, response);
  sendBytes(frame.sender, bytes);
  if (replyCacheOrder_.size() >= config_.replyCacheCap) {
    replyCache_.erase(replyCacheOrder_.front());
    replyCacheOrder_.pop_front();
  }
  replyCache_.emplace(key, std::move(bytes));
  replyCacheOrder_.push_back(key);
}

}  // namespace avmon::net
