#include "sim/sharded_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace avmon::sim {

namespace {

// Total order on hand-offs: due time, then the shard-count-invariant
// sender key. (src, seq) pairs are unique, so the order is strict.
bool handoffBefore(const Handoff& a, const Handoff& b) noexcept {
  if (a.due != b.due) return a.due < b.due;
  if (a.key.src != b.key.src) return a.key.src < b.key.src;
  return a.key.seq < b.key.seq;
}

}  // namespace

// Per-shard adapter handed to that shard's Network: stamps the source
// shard onto every hand-off and forwards it to the owner's queues.
class ShardedSimulator::ShardPort final : public CrossShardRouter {
 public:
  ShardPort(ShardedSimulator& owner, std::size_t shard)
      : owner_(owner), shard_(shard) {}

  std::uint32_t globalIndexOf(const NodeId& id) const override {
    return owner_.globalIndexOf(id);
  }

  void handoffMessage(SimTime due, HandoffKey key, const NodeId& from,
                      const NodeId& to, Message message) override {
    owner_.enqueue(shard_, Handoff{due, key, from, to, std::move(message)});
  }

  void handoffRpcRequest(SimTime due, HandoffKey key, const NodeId& from,
                         const NodeId& to, RpcRequest request,
                         RpcTicket ticket) override {
    owner_.enqueue(
        shard_, Handoff{due, key, from, to,
                        RpcRequestHandoff{std::move(request),
                                          std::move(ticket)}});
  }

  void handoffRpcResponse(SimTime due, HandoffKey key, const NodeId& caller,
                          RpcResponse response, RpcTicket ticket) override {
    owner_.enqueue(
        shard_, Handoff{due, key, NodeId{}, caller,
                        RpcResponseHandoff{std::move(response),
                                           std::move(ticket)}});
  }

 private:
  ShardedSimulator& owner_;
  std::size_t shard_;
};

struct ShardedSimulator::Shard {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<ShardPort> port;
  std::unique_ptr<Network> net;
  /// out[d]: hand-offs produced by this shard for destination shard d.
  std::vector<std::unique_ptr<SpscHandoffQueue<Handoff>>> out;
  /// Drain scratch owned by this shard in its role as a DESTINATION;
  /// capacity is retained across windows.
  std::vector<Handoff> inbox;
  /// Items this shard inserted at barriers (its destination-side tally).
  std::uint64_t drained = 0;
};

ShardedSimulator::TreeBarrier::TreeBarrier(unsigned parties) {
  const unsigned p = std::max(1u, parties);
  // Level sizes bottom-up, computed before any Node exists: Node holds an
  // atomic (neither movable nor copyable), so nodes_ must be sized once.
  std::vector<unsigned> levels{(p + kFanIn - 1) / kFanIn};
  while (levels.back() > 1) {
    levels.push_back((levels.back() + kFanIn - 1) / kFanIn);
  }
  unsigned total = 0;
  for (const unsigned count : levels) total += count;
  nodes_ = std::vector<Node>(total);

  leafOf_.resize(p);
  for (unsigned i = 0; i < p; ++i) leafOf_[i] = i / kFanIn;
  unsigned levelStart = 0;
  unsigned members = p;  // arrivals feeding the current level
  for (const unsigned count : levels) {
    for (unsigned i = 0; i < count; ++i) {
      Node& node = nodes_[levelStart + i];
      node.expected = std::min(kFanIn, members - i * kFanIn);
      node.pending.store(node.expected, std::memory_order_relaxed);
      node.parent = levelStart + count + i / kFanIn;
    }
    members = count;
    levelStart += count;
  }
  nodes_.back().root = true;
}

void ShardedSimulator::TreeBarrier::arriveAndWait(unsigned party) {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  unsigned index = leafOf_[party];
  for (;;) {
    Node& node = nodes_[index];
    if (node.pending.fetch_sub(1, std::memory_order_acq_rel) != 1) break;
    // Last arrival at this node: reset it for the next generation, then
    // count one arrival at the parent — or release everyone from the
    // root. The root bump happens only after every node in the tree has
    // completed (each resets itself before propagating), so re-arrivals
    // in the next generation always find reset counters.
    node.pending.store(node.expected, std::memory_order_relaxed);
    if (node.root) {
      generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    index = node.parent;
  }
  int spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (++spins > 512) {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

unsigned ShardedSimulator::computeWorkerCount(const Config& config) noexcept {
  const std::size_t shardCount = std::max<std::size_t>(1, config.shards);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned requested = config.threads == 0 ? hw : config.threads;
  return static_cast<unsigned>(std::min<std::size_t>(requested, shardCount));
}

ShardedSimulator::ShardedSimulator(Config config)
    : window_(std::max<SimDuration>(
          1, config.lookahead > 0
                 ? std::min(config.lookahead, config.net.minLatency)
                 : config.net.minLatency)),
      workerCount_(computeWorkerCount(config)),
      barrier_(workerCount_) {
  const std::size_t shardCount = std::max<std::size_t>(1, config.shards);
  if (config.net.minLatency < 1 && shardCount > 1) {
    throw std::invalid_argument(
        "ShardedSimulator: minLatency must be >= 1 ms — it is the lookahead "
        "that keeps shards independent within a window");
  }
  if (config.lookahead < 0) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be >= 0");
  }
  if (config.net.minLatency > config.net.maxLatency) {
    throw std::invalid_argument("ShardedSimulator: minLatency > maxLatency");
  }
  shards_.reserve(shardCount);
  for (std::size_t s = 0; s < shardCount; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->sim = std::make_unique<Simulator>();
    shard->port = std::make_unique<ShardPort>(*this, s);
    // Every shard network gets the SAME seed: per-node streams are keyed
    // by (seed, node id), so equality of seeds — not of shard layout — is
    // what makes a node's draws partition-independent.
    shard->net =
        std::make_unique<Network>(*shard->sim, config.net, Rng(config.netSeed));
    shard->net->setRouter(shard->port.get());
    // Determinism sentinel: this shard's sub-world is owned by whichever
    // worker holds shard s during a window phase. Node RNGs and per-sender
    // streams inherit these bindings (AvmonNode ctor, Network::slotFor).
    AVMON_DET_BIND(shard->sim->detTag, &detDomain_, s);
    AVMON_DET_BIND(shard->net->detTag, &detDomain_, s);
    shard->out.reserve(shardCount);
    for (std::size_t d = 0; d < shardCount; ++d) {
      shard->out.push_back(std::make_unique<SpscHandoffQueue<Handoff>>());
    }
    shards_.push_back(std::move(shard));
  }

  for (unsigned w = 1; w < workerCount_; ++w) {
    workers_.emplace_back([this, w] { workerLoop(w); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!workers_.empty()) {
    stop_.store(true, std::memory_order_release);
    barrier_.arriveAndWait(0);  // releases workers into the stop check
    for (std::thread& t : workers_) t.join();
  }
}

Simulator& ShardedSimulator::simOf(std::size_t shard) {
  return *shards_[shard]->sim;
}

Network& ShardedSimulator::netOf(std::size_t shard) {
  return *shards_[shard]->net;
}

const Network& ShardedSimulator::netOf(std::size_t shard) const {
  return *shards_[shard]->net;
}

void ShardedSimulator::setFaultPlan(const FaultPlan* plan) {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->net->setFaultPlan(plan);
  }
}

std::uint32_t ShardedSimulator::registerNode(const NodeId& id) {
  const auto [it, inserted] =
      indexOf_.emplace(id, static_cast<std::uint32_t>(indexOf_.size()));
  (void)inserted;
  return it->second;
}

std::size_t ShardedSimulator::shardOf(const NodeId& id) const {
  return shardOfIndex(globalIndexOf(id));
}

std::uint32_t ShardedSimulator::globalIndexOf(const NodeId& id) const {
  const auto it = indexOf_.find(id);
  assert(it != indexOf_.end() &&
         "node must be registered with ShardedSimulator::registerNode before "
         "attaching or receiving traffic");
  if (it == indexOf_.end()) return 0;  // degraded (assertions compiled out)
  return it->second;
}

void ShardedSimulator::enqueue(std::size_t srcShard, Handoff handoff) {
  const std::size_t dst = shardOf(handoff.to);
  shards_[srcShard]->out[dst]->push(std::move(handoff));
}

void ShardedSimulator::runShardsStealing(SimTime target) {
  try {
    // Per-window work stealing: shards are claimed from the shared cursor
    // instead of a static worker -> shard map, so a worker whose claims
    // went idle picks up the stragglers instead of spinning at barrier B.
    // WHICH thread runs a shard cannot affect results: a shard's event
    // execution is self-contained within a window, the sentinel scope
    // follows the claim, and the barrier orders the producer hand-over on
    // every SPSC queue between windows.
    for (std::size_t s = stealCursor_.fetch_add(1, std::memory_order_relaxed);
         s < shards_.size();
         s = stealCursor_.fetch_add(1, std::memory_order_relaxed)) {
      AVMON_DET_SHARD_SCOPE(&detDomain_, s);
      shards_[s]->sim->runUntil(target);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!firstError_) firstError_ = std::current_exception();
  }
}

void ShardedSimulator::drainOwnedShards(unsigned worker) {
  try {
    for (std::size_t d = worker; d < shards_.size(); d += workerCount_) {
      Shard& dest = *shards_[d];
      // Sanctioned barrier-phase insertion: while draining, this worker
      // acts as destination shard d.
      AVMON_DET_SHARD_SCOPE(&detDomain_, d);
      dest.inbox.clear();
      for (const auto& src : shards_) {
        src->out[d]->drainInto(dest.inbox);
      }
      if (dest.inbox.empty()) continue;
      std::sort(dest.inbox.begin(), dest.inbox.end(), handoffBefore);
      for (Handoff& h : dest.inbox) {
        std::visit(Overloaded{
                       [&](Message& message) {
                         dest.net->scheduleHandoffDelivery(
                             h.due, h.from, h.to, std::move(message));
                       },
                       [&](RpcRequestHandoff& leg) {
                         dest.net->scheduleHandoffServe(
                             h.due, h.from, h.to, std::move(leg.request),
                             std::move(leg.ticket));
                       },
                       [&](RpcResponseHandoff& leg) {
                         dest.net->scheduleHandoffComplete(
                             h.due, std::move(leg.response),
                             std::move(leg.ticket));
                       },
                   },
                   h.payload);
      }
      dest.drained += dest.inbox.size();
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!firstError_) firstError_ = std::current_exception();
  }
}

void ShardedSimulator::visitOwnedShards(unsigned worker) {
  try {
    for (std::size_t s = worker; s < shards_.size(); s += workerCount_) {
      AVMON_DET_SHARD_SCOPE(&detDomain_, s);
      (*visitFn_)(s);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!firstError_) firstError_ = std::current_exception();
  }
}

void ShardedSimulator::workerLoop(unsigned worker) {
  for (;;) {
    barrier_.arriveAndWait(worker);  // A: coordinator published the phase
    if (stop_.load(std::memory_order_acquire)) return;
    if (phase_ == Phase::kVisit) {
      visitOwnedShards(worker);
      barrier_.arriveAndWait(worker);  // C: every visit done
      continue;
    }
    runShardsStealing(phaseTarget_);
    barrier_.arriveAndWait(worker);  // B: every shard reached the window end
    drainOwnedShards(worker);
    barrier_.arriveAndWait(worker);  // C: every barrier insertion done
  }
}

std::uint64_t ShardedSimulator::executeWindow(SimTime wEnd) {
  // A window phase is in flight until the final barrier: any unscoped
  // touch of shard-owned state in this span is a violation.
  AVMON_DET_PHASE_SCOPE(detDomain_);
  std::uint64_t drainedBefore = 0;
  for (const auto& s : shards_) drainedBefore += s->drained;
  stealCursor_.store(0, std::memory_order_relaxed);
  if (workers_.empty()) {
    runShardsStealing(wEnd);
    drainOwnedShards(0);
  } else {
    phaseTarget_ = wEnd;
    barrier_.arriveAndWait(0);  // A
    runShardsStealing(wEnd);
    barrier_.arriveAndWait(0);  // B
    drainOwnedShards(0);
    barrier_.arriveAndWait(0);  // C
  }
  rethrowPendingError();
  std::uint64_t drainedAfter = 0;
  for (const auto& s : shards_) drainedAfter += s->drained;
  return drainedAfter - drainedBefore;
}

void ShardedSimulator::visitShards(const std::function<void(std::size_t)>& fn) {
  // The visit borrows the window-phase machinery: same shard->worker
  // assignment, same sentinel scopes, so a reducer bank a visit populates
  // is touched by exactly one thread for the whole run.
  AVMON_DET_PHASE_SCOPE(detDomain_);
  visitFn_ = &fn;
  if (workers_.empty()) {
    visitOwnedShards(0);
  } else {
    phase_ = Phase::kVisit;
    barrier_.arriveAndWait(0);  // A
    visitOwnedShards(0);
    barrier_.arriveAndWait(0);  // C
    phase_ = Phase::kWindow;
  }
  visitFn_ = nullptr;
  rethrowPendingError();
}

void ShardedSimulator::rethrowPendingError() {
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(errorMutex_);
    error = firstError_;
    firstError_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardedSimulator::runUntil(SimTime until) {
  while (windowStart_ <= until) {
    const SimTime fullEnd = windowStart_ + window_ - 1;
    const SimTime wEnd = std::min(fullEnd, until);
    const std::uint64_t executedBefore = totalExecuted();
    const std::uint64_t drained = executeWindow(wEnd);
    ++windowsRun_;
    handoffsCarried_ += drained;
    if (wEnd != fullEnd) break;  // stopped mid-window; resume here later
    if (drained == 0 && totalExecuted() == executedBefore) {
      // Idle window: hop straight to the window holding the next pending
      // event instead of grinding through empty ones. (Safe: the queues
      // were just drained, so every pending event is inside a simulator.)
      SimTime next = Simulator::kNoPendingEvent;
      for (const auto& s : shards_) {
        next = std::min(next, s->sim->nextEventTime());
      }
      if (next > until) break;
      windowStart_ = next - (next % window_);
    } else {
      windowStart_ = fullEnd + 1;
    }
  }
  // No pending event at or before `until` remains; advance every clock and
  // park the window cursor at the window containing `until` (a later call
  // resumes there instead of re-walking skipped idle windows).
  for (const auto& s : shards_) s->sim->runUntil(until);
  if (until >= 0) {
    windowStart_ = std::max(windowStart_, until - (until % window_));
  }
  if (now_ < until) now_ = until;
}

std::uint64_t ShardedSimulator::totalExecuted() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim->executedEvents();
  return total;
}

std::uint64_t ShardedSimulator::executedEvents() const {
  return totalExecuted();
}

std::uint64_t ShardedSimulator::delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->net->delivered();
  return total;
}

std::uint64_t ShardedSimulator::lost() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->net->lost();
  return total;
}

}  // namespace avmon::sim
