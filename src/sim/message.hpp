// One-way wire messages of the simulated deployment.
//
// The transport carries a *closed* sum type: every message that can cross
// the simulated network is an alternative of `Message`, so receiver
// dispatch is an exhaustive std::visit (adding a message type without
// handling it everywhere is a compile error, not a silently ignored
// payload) and wire-size accounting lives with the type instead of at
// every send site.
//
// Adding a new message type:
//   1. define its struct here with a `wireBytes()` (usually a constexpr
//      kBytes constant, following the paper's fixed-format accounting);
//   2. append it to the `Message` variant;
//   3. recompile — every exhaustive dispatch site now fails until the new
//      alternative is handled.
#pragma once

#include <cstddef>
#include <string>
#include <variant>

#include "common/node_id.hpp"

namespace avmon::sim {

/// Visitor helper for std::visit over the transport sum types:
///   std::visit(Overloaded{[](const JoinMessage&){...}, ...}, message)
template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

// ---------------------------------------------------------------------------
// AVMON protocol messages (sizes per the paper's Section 5.1 accounting:
// ids are 6 B on the wire, weights 4 B, plus a small header).
// ---------------------------------------------------------------------------

/// Figure 1: JOIN(x, c) — origin x asks receivers to add it to their
/// coarse views and split-forward the remaining weight.
struct JoinMessage {
  NodeId origin;
  int weight = 0;

  static constexpr std::size_t kBytes = 12;  // 6 B id + 4 B weight + header
  constexpr std::size_t wireBytes() const noexcept { return kBytes; }
};

/// Figure 2: NOTIFY(u, v) — some node discovered that u ∈ PS(v), i.e. u
/// should monitor v. Sent to both u and v, who re-verify before acting.
struct NotifyMessage {
  NodeId monitor;  ///< u: the node that satisfies the consistency condition
  NodeId target;   ///< v: the node to be monitored

  static constexpr std::size_t kBytes = 16;  // two 6 B ids + header
  constexpr std::size_t wireBytes() const noexcept { return kBytes; }
};

/// Section 5.4 "PR2": a node that went unpinged for two monitoring periods
/// forces itself back into the coarse views of its own CV members.
struct ForceAddMessage {
  NodeId origin;

  static constexpr std::size_t kBytes = 10;  // 6 B id + header
  constexpr std::size_t wireBytes() const noexcept { return kBytes; }
};

// ---------------------------------------------------------------------------
// Baseline-scheme messages (Table 1 comparisons).
// ---------------------------------------------------------------------------

/// Broadcast baseline (AVCast): presence announcement sent to every member
/// on join.
struct PresenceMessage {
  NodeId origin;

  static constexpr std::size_t kBytes = 10;
  constexpr std::size_t wireBytes() const noexcept { return kBytes; }
};

/// Central-monitor baseline: join registration sent to the server.
struct RegisterMessage {
  NodeId origin;

  static constexpr std::size_t kBytes = 10;
  constexpr std::size_t wireBytes() const noexcept { return kBytes; }
};

// ---------------------------------------------------------------------------
// Harness payload.
// ---------------------------------------------------------------------------

/// Free-form payload with a declared wire size, for transport tests and
/// ad-hoc harness traffic. Protocol code never sends this.
struct TextMessage {
  std::string text;
  std::size_t bytes = 0;

  std::size_t wireBytes() const noexcept { return bytes; }
};

/// The closed set of everything the simulated network can carry one-way.
using Message = std::variant<JoinMessage, NotifyMessage, ForceAddMessage,
                             PresenceMessage, RegisterMessage, TextMessage>;

/// Outgoing wire size of a message — the bytes charged to the sender.
inline std::size_t wireBytes(const Message& message) {
  return std::visit([](const auto& m) { return m.wireBytes(); }, message);
}

}  // namespace avmon::sim
