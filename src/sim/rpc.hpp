// Typed request/response exchanges over the simulated network.
//
// Synchronous protocol steps (coarse-view ping, CV fetch, half-view swap,
// monitoring ping) are modeled as RPCs. Each exchange is a closed
// request/response type pair: the caller hands the network an `RpcRequest`
// alternative, the target's `Endpoint::onRpc` serves it, and the caller
// gets the matching response back — no protocol code ever sees, let alone
// downcasts, another node object.
//
// Wire-size accounting lives with the request type. Both legs are
// *caller-declared* budgets, matching the paper's fixed-format accounting
// (e.g. a CV fetch is charged as bytesPerEntry · (|CV(x)|+1) regardless of
// how many entries the responder actually returns): `requestWireBytes()`
// is charged to the caller unconditionally, `responseWireBytes()` to the
// target iff the exchange succeeds. A timeout (target down, detached, or
// an injected failure) is an empty optional — the request leg is spent,
// the response leg is not.
//
// Adding a new exchange: define the request/response structs, add both to
// the variants, specialize RpcTraits, and recompile — every exhaustive
// onRpc dispatch now fails until the new request is served.
#pragma once

#include <cstddef>
#include <variant>
#include <vector>

#include "common/node_id.hpp"
#include "sim/message.hpp"

namespace avmon::sim {

/// Liveness probe: Figure 2 step 1 (coarse-view entry ping) and the
/// generic "are you up" any live endpoint answers. Ping-sized both ways.
struct PingRequest {
  std::size_t pingBytes = 8;

  std::size_t requestWireBytes() const noexcept { return pingBytes; }
  std::size_t responseWireBytes() const noexcept { return pingBytes; }
};
struct PingResponse {};

/// Coarse-view fetch: Figure 2 step 2, and the join-time view inheritance
/// of Figure 1. The ask is ping-sized; the response budget is declared by
/// the caller (bytesPerEntry · expected entries).
struct CvFetchRequest {
  std::size_t pingBytes = 8;
  std::size_t responseBudgetBytes = 0;

  std::size_t requestWireBytes() const noexcept { return pingBytes; }
  std::size_t responseWireBytes() const noexcept { return responseBudgetBytes; }
};
struct CvFetchResponse {
  std::vector<NodeId> view;  ///< the responder's current coarse view
};

/// CYCLON-style half-view swap (ShufflePolicy::kSwap): the caller offers
/// `offered`, the responder absorbs them and hands back an equal-sized
/// random slice of its own view. Both legs are charged as
/// entryBytes · budgetEntries, the halves the protocol negotiated.
struct SwapRequest {
  std::vector<NodeId> offered;
  std::size_t entryBytes = 8;
  std::size_t budgetEntries = 0;

  std::size_t requestWireBytes() const noexcept {
    return entryBytes * budgetEntries;
  }
  std::size_t responseWireBytes() const noexcept {
    return entryBytes * budgetEntries;
  }
};
struct SwapResponse {
  std::vector<NodeId> given;  ///< entries the responder traded away
};

/// Monitoring ping (Section 3.3): like a liveness probe, but the target
/// also records the arrival for the PR2 re-advertisement baseline.
struct MonitorPingRequest {
  std::size_t pingBytes = 8;

  std::size_t requestWireBytes() const noexcept { return pingBytes; }
  std::size_t responseWireBytes() const noexcept { return pingBytes; }
};
struct MonitorPingResponse {
  bool acknowledged = true;
};

/// The closed sets of everything that can cross the network as an RPC.
using RpcRequest =
    std::variant<PingRequest, CvFetchRequest, SwapRequest, MonitorPingRequest>;
using RpcResponse = std::variant<PingResponse, CvFetchResponse, SwapResponse,
                                 MonitorPingResponse>;

/// Compile-time request → response mapping, so call sites get the concrete
/// response type back (see Network::exchange) without touching the variant.
template <class Request>
struct RpcTraits;
template <>
struct RpcTraits<PingRequest> {
  using Response = PingResponse;
};
template <>
struct RpcTraits<CvFetchRequest> {
  using Response = CvFetchResponse;
};
template <>
struct RpcTraits<SwapRequest> {
  using Response = SwapResponse;
};
template <>
struct RpcTraits<MonitorPingRequest> {
  using Response = MonitorPingResponse;
};

/// Bytes charged to the caller when the request is sent.
inline std::size_t requestWireBytes(const RpcRequest& request) {
  return std::visit([](const auto& r) { return r.requestWireBytes(); },
                    request);
}

/// Bytes charged to the target when the response is produced.
inline std::size_t responseWireBytes(const RpcRequest& request) {
  return std::visit([](const auto& r) { return r.responseWireBytes(); },
                    request);
}

}  // namespace avmon::sim
