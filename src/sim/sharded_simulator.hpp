// Multi-core execution of ONE scenario: the node population is partitioned
// across S shards, each shard owning a full sub-world (Simulator + dense-
// slot Network), and the shards run in lock-stepped time windows on a
// thread pool.
//
// Correctness model (conservative parallel discrete-event simulation with
// the network's minimum latency as lookahead):
//
//  * The window length W equals the minimum network latency (>= 1 ms). A
//    message sent at time t inside window [kW, (k+1)W) is due no earlier
//    than t + W >= (k+1)W — i.e. always in a LATER window — so shards
//    never need to see each other's state mid-window and can run their
//    windows fully in parallel.
//  * Every inter-node hand-off (one-way delivery, deferred-RPC request
//    leg, deferred-RPC response leg) — including traffic whose endpoints
//    share a shard — is pushed onto an SPSC queue (one per source/dest
//    shard pair) instead of being scheduled directly. At the window
//    barrier each destination shard drains its column of queues, sorts
//    the batch by the shard-count-invariant key (due, sender index,
//    per-sender seq), and inserts it into its simulator.
//
// Determinism: because (a) the barrier at which an item is inserted is a
// function of its send time alone, (b) batches are sorted by a key that
// depends only on what each node did, and (c) all network randomness is
// drawn from per-sender streams keyed by node id (see Network), the
// execution each node observes is bit-identical for EVERY shard count —
// S = 8 reproduces S = 1 exactly, which the sharded property suite pins
// against golden fingerprints. The price of that guarantee: callers must
// route synchronous state exchanges through the deferred-RPC mode when
// S > 1 (an instantaneous Network::call cannot cross a shard boundary),
// and scenario metrics must be per-node or order-insensitive aggregates.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/det_checks.hpp"
#include "common/node_id.hpp"
#include "common/time.hpp"
#include "sim/network.hpp"
#include "sim/shard_queue.hpp"
#include "sim/simulator.hpp"

namespace avmon::sim {

/// Deferred-RPC request leg crossing to the target's shard.
struct RpcRequestHandoff {
  RpcRequest request;
  RpcTicket ticket;
};

/// Deferred-RPC response leg crossing back to the caller's shard.
struct RpcResponseHandoff {
  RpcResponse response;
  RpcTicket ticket;
};

/// One cross-shard event in flight: a one-way message, a deferred-RPC
/// request leg, or a deferred-RPC response leg. The payload is a variant
/// — these records are queued, sorted, and moved on the per-window hot
/// path, so each carries only its own alternative.
struct Handoff {
  SimTime due = 0;
  HandoffKey key;
  NodeId from;  ///< sender (message / request legs)
  NodeId to;    ///< destination node, or the RPC caller for response legs
  std::variant<Message, RpcRequestHandoff, RpcResponseHandoff> payload;
};

/// Runs one simulated world on up to `threads` cores by partitioning its
/// node population across `shards` sub-worlds.
class ShardedSimulator {
 public:
  struct Config {
    /// Number of shards (>= 1). Shard 1 is the degenerate case: same
    /// window/barrier/hand-off mechanics, no threads — which is exactly
    /// why its runs are bit-identical to any other shard count.
    std::size_t shards = 1;
    /// Shared latency/fault model. minLatency must be >= 1 ms (it is the
    /// cross-shard lookahead that bounds the window length).
    NetworkConfig net;
    /// Seed shared by every shard's Network; per-node streams derive from
    /// (seed, node id), so the partitioning never shifts a node's draws.
    std::uint64_t netSeed = 1;
    /// Worker threads; 0 = min(shards, hardware concurrency).
    unsigned threads = 0;
    /// Cross-shard lookahead bounding the window length; 0 (the default)
    /// means net.minLatency. A fault plan whose latency windows or geo
    /// bands dip below the base band minimum must lower this to the
    /// plan's lookaheadFloor, or a fast-regime message could be due
    /// inside the window that sent it.
    SimDuration lookahead = 0;
  };

  /// Attaches a fault plan to every shard's Network (see
  /// Network::setFaultPlan). The plan must outlive the simulator; callers
  /// are responsible for configuring `Config::lookahead` to the plan's
  /// lookaheadFloor before construction.
  void setFaultPlan(const FaultPlan* plan);

  explicit ShardedSimulator(Config config);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  std::size_t shardCount() const noexcept { return shards_.size(); }
  SimDuration windowLength() const noexcept { return window_; }
  unsigned workerThreads() const noexcept { return workerCount_; }

  /// Registers a node and assigns it a global index (round-robin over
  /// shards by index). Must be called for every node id that will attach
  /// to a shard network, before running. Returns the global index.
  std::uint32_t registerNode(const NodeId& id);

  std::size_t shardOfIndex(std::uint32_t index) const noexcept {
    return static_cast<std::size_t>(index) % shards_.size();
  }
  std::size_t shardOf(const NodeId& id) const;
  std::uint32_t globalIndexOf(const NodeId& id) const;

  Simulator& simOf(std::size_t shard);
  Network& netOf(std::size_t shard);
  const Network& netOf(std::size_t shard) const;
  Simulator& simFor(const NodeId& id) { return simOf(shardOf(id)); }
  Network& netFor(const NodeId& id) { return netOf(shardOf(id)); }
  const Network& netFor(const NodeId& id) const { return netOf(shardOf(id)); }

  /// Runs every shard in lock-stepped windows until all simulated clocks
  /// reach `until` (events exactly at `until` are executed). May be called
  /// repeatedly with increasing horizons.
  void runUntil(SimTime until);

  /// Runs `fn(shard)` once per shard, in parallel, each call on the
  /// shard's HOME worker (shard s -> worker s % workers) and inside that
  /// shard's determinism-sentinel scope. Unlike the run phase — which
  /// steals shards across workers per window — visits always use the
  /// static home assignment, so state `fn` accumulates per shard (e.g. a
  /// reducer bank) is touched by exactly one thread for the whole run.
  /// The shards must be quiescent (between runUntil calls); `fn` may read
  /// the shard's sub-world and write only per-shard state it owns. This is
  /// how per-shard reducer banks ingest window probes without any state
  /// ever crossing a shard boundary (experiments/streaming). Exceptions
  /// from `fn` are rethrown on this thread after every shard completed.
  void visitShards(const std::function<void(std::size_t)>& fn);

  /// Watermark: all shards have fully executed up to and including now().
  SimTime now() const noexcept { return now_; }

  // ---- aggregates (valid while shards are quiescent) ----
  std::uint64_t executedEvents() const;
  std::uint64_t delivered() const;
  std::uint64_t lost() const;
  /// Windows actually executed (idle stretches are skipped in one hop).
  std::uint64_t windowsRun() const noexcept { return windowsRun_; }
  /// Hand-off items carried across window barriers so far.
  std::uint64_t handoffsCarried() const noexcept { return handoffsCarried_; }

 private:
  class ShardPort;
  struct Shard;

  // Reusable sense-reversing combining-tree barrier. Each party arrives
  // at its leaf group node (kFanIn parties per node); the last arriver at
  // a node propagates one arrival to the parent, and the root release is
  // a single generation bump every waiter spins on (short spin, then
  // yield — the window cadence is far too fast for a condvar round-trip
  // per phase). Per-barrier contention is O(fan-in) per cache line
  // instead of every party hammering one counter, which is what the old
  // flat barrier cost three times per window at high worker counts.
  class TreeBarrier {
   public:
    explicit TreeBarrier(unsigned parties);
    /// `party` is the calling thread's stable index in [0, parties).
    void arriveAndWait(unsigned party);

   private:
    static constexpr unsigned kFanIn = 4;
    struct alignas(64) Node {
      std::atomic<unsigned> pending{0};
      unsigned expected = 0;
      unsigned parent = 0;  ///< unused on the root
      bool root = false;
    };
    std::vector<Node> nodes_;        ///< leaves first, root last
    std::vector<unsigned> leafOf_;   ///< party -> leaf node index
    std::atomic<std::uint64_t> generation_{0};
  };

  void enqueue(std::size_t srcShard, Handoff handoff);

  // Run phase: every worker claims shards from the shared steal cursor
  // until none remain (per-window work stealing — a worker whose shards
  // went idle picks up the stragglers instead of spinning at the barrier).
  void runShardsStealing(SimTime target);
  // Drain/visit phases keep the static home map (shard s -> worker
  // s % workerCount_): drains reuse each destination's inbox scratch, and
  // visitShards promises reducer banks a single touching thread.
  void drainOwnedShards(unsigned worker);
  void visitOwnedShards(unsigned worker);

  // One full window on the current thread layout; returns items drained.
  std::uint64_t executeWindow(SimTime wEnd);

  void workerLoop(unsigned worker);
  void rethrowPendingError();

  std::uint64_t totalExecuted() const;

  static unsigned computeWorkerCount(const Config& config) noexcept;

  SimDuration window_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<NodeId, std::uint32_t> indexOf_;

  SimTime windowStart_ = 0;  ///< start of the next (or partially run) window
  SimTime now_ = 0;
  std::uint64_t windowsRun_ = 0;
  std::uint64_t handoffsCarried_ = 0;

  // Thread pool (empty when one worker suffices).
  unsigned workerCount_ = 1;
  std::vector<std::thread> workers_;
  TreeBarrier barrier_;
  // Next unclaimed shard of the current run phase; reset by the
  // coordinator before each release (the barrier orders the reads).
  std::atomic<std::size_t> stealCursor_{0};
  // What the next barrier-A release asks the workers to do: run a window
  // to phaseTarget_ (the default) or visit their shards with visitFn_.
  // Published by the coordinator before A; the barrier orders the reads.
  enum class Phase : std::uint8_t { kWindow, kVisit };
  Phase phase_ = Phase::kWindow;
  SimTime phaseTarget_ = 0;
  const std::function<void(std::size_t)>* visitFn_ = nullptr;
  // Determinism-sentinel domain for this world (per-instance so concurrent
  // worlds under a parallel runner check independently); empty unless
  // AVMON_DET_CHECKS.
  AVMON_DET_DOMAIN(detDomain_);
  std::atomic<bool> stop_{false};
  std::exception_ptr firstError_;  // guarded by errorMutex_
  std::mutex errorMutex_;
};

}  // namespace avmon::sim
