// Discrete-event simulation core.
//
// A Simulator owns a time-ordered collection of closures. Events scheduled
// for the same instant run in scheduling order, which keeps runs
// deterministic: the execution order is exactly (when, seq), where seq is
// the global scheduling sequence number.
//
// The store is a two-tier calendar queue tuned for the protocol workload
// (integral-millisecond timestamps, dense near-future traffic from network
// latencies, sparse far-future traffic from minute-scale periodic timers):
//
//  * Near tier: a power-of-two ring of kBucketCount one-millisecond FIFO
//    buckets covering [cursor, cursor + kBucketCount). Scheduling into the
//    window and firing from it are O(1) and allocation-free once bucket
//    capacity has warmed up. Same-instant events share one bucket and run
//    back-to-back as a batch — no per-event heap pop between them.
//  * Overflow tier: a binary min-heap ordered by (when, seq) for events
//    beyond the window. As the cursor advances, due overflow events are
//    promoted into their buckets in (when, seq) order *before* any new
//    event can be scheduled at those times, so bucket FIFO order remains
//    global (when, seq) order and seeded runs are bit-identical to the
//    classic single-heap scheduler this replaced.
//
// Closures are stored as sim::InlineAction (small-buffer optimized), so the
// common schedule/fire cycle performs zero heap allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/det_checks.hpp"
#include "common/time.hpp"
#include "sim/inline_action.hpp"

namespace avmon::sim {

/// Deterministic single-threaded discrete-event scheduler.
class Simulator {
 public:
  using Action = InlineAction;

  /// Ring span in buckets (= milliseconds). Covers every latency-scale
  /// delay the network model produces; minute-scale timers overflow to the
  /// heap tier and are promoted as the window reaches them.
  static constexpr std::size_t kBucketCount = 8192;

  Simulator();

  // The queue stores closures that may capture `this`; moving the simulator
  // would dangle them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when`. Scheduling in the past is
  /// clamped to `now()` (runs as soon as the current event finishes).
  void at(SimTime when, Action action);

  /// Shard-ownership tag for the determinism sentinel (see
  /// common/det_checks.hpp); expands to nothing unless AVMON_DET_CHECKS.
  AVMON_DET_TAG(detTag);

  /// Schedules `action` after the given delay from `now()`.
  void after(SimDuration delay, Action action) { at(now_ + delay, std::move(action)); }

  /// Schedules `action` every `period`, first firing at `firstAt`. The
  /// callback receives no arguments; cancel by returning false from `keepGoing`.
  void every(SimTime firstAt, SimDuration period,
             std::function<bool()> keepGoing);

  /// Runs events until the queue is empty or simulated time would exceed
  /// `until`. Events exactly at `until` are executed.
  void runUntil(SimTime until);

  /// Executes the single earliest pending event. Returns false if none.
  bool step();

  /// Number of pending events (for tests).
  std::size_t pendingEvents() const noexcept { return size_; }

  /// Sentinel returned by nextEventTime() when nothing is pending.
  static constexpr SimTime kNoPendingEvent =
      std::numeric_limits<SimTime>::max();

  /// Time of the earliest pending event without executing or repositioning
  /// anything, or kNoPendingEvent. Used by the sharded driver to skip idle
  /// windows; O(ring span) worst case when the queue is sparse, O(first
  /// occupied bucket) when it is busy.
  SimTime nextEventTime() const noexcept;

  /// Total events executed so far (for tests and sanity checks).
  std::uint64_t executedEvents() const noexcept { return executed_; }

  /// Events currently waiting in the overflow tier (for tests/benches).
  std::size_t overflowEvents() const noexcept { return overflow_.size(); }

 private:
  static constexpr std::size_t kMask = kBucketCount - 1;
  static_assert((kBucketCount & kMask) == 0, "ring size must be a power of 2");

  // One calendar slot: a FIFO that reuses its storage across drains.
  struct Bucket {
    std::vector<InlineAction> items;
    std::size_t head = 0;

    bool empty() const noexcept { return head == items.size(); }
    void push(InlineAction a) { items.push_back(std::move(a)); }
    InlineAction pop() {
      InlineAction a = std::move(items[head]);
      if (++head == items.size()) {
        items.clear();  // keeps capacity: steady state never reallocates
        head = 0;
      }
      return a;
    }
  };

  struct OverflowEvent {
    SimTime when;
    std::uint64_t seq;
    InlineAction action;
  };
  struct Later {
    bool operator()(const OverflowEvent& a, const OverflowEvent& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Bucket& bucketFor(SimTime when) noexcept {
    return buckets_[static_cast<std::size_t>(when) & kMask];
  }

  // Positions the cursor on the next pending event. Returns true iff that
  // event's time is <= until; never advances the cursor past `until` (so
  // the ring window stays valid for later insertions at the boundary).
  bool findNext(SimTime until);

  // Moves every overflow event inside the current window into its bucket,
  // in (when, seq) order.
  void promote();

  std::vector<Bucket> buckets_;
  std::vector<OverflowEvent> overflow_;  // binary min-heap via std::*_heap
  SimTime cursor_ = 0;      ///< lowest time mapped by the ring window
  std::size_t ringCount_ = 0;  ///< events currently in ring buckets
  std::size_t size_ = 0;       ///< total pending events (ring + overflow)
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace avmon::sim
