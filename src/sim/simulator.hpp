// Discrete-event simulation core.
//
// A Simulator owns a time-ordered queue of closures. Events scheduled for
// the same instant run in scheduling order (a monotonically increasing
// sequence number breaks ties), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace avmon::sim {

/// Deterministic single-threaded discrete-event scheduler.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;

  // The queue stores closures that may capture `this`; moving the simulator
  // would dangle them.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Starts at 0.
  SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `when`. Scheduling in the past is
  /// clamped to `now()` (runs as soon as the current event finishes).
  void at(SimTime when, Action action);

  /// Schedules `action` after the given delay from `now()`.
  void after(SimDuration delay, Action action) { at(now_ + delay, std::move(action)); }

  /// Schedules `action` every `period`, first firing at `firstAt`. The
  /// callback receives no arguments; cancel by returning false from `keepGoing`.
  void every(SimTime firstAt, SimDuration period,
             std::function<bool()> keepGoing);

  /// Runs events until the queue is empty or simulated time would exceed
  /// `until`. Events exactly at `until` are executed.
  void runUntil(SimTime until);

  /// Executes the single earliest pending event. Returns false if none.
  bool step();

  /// Number of pending events (for tests).
  std::size_t pendingEvents() const noexcept { return queue_.size(); }

  /// Total events executed so far (for tests and sanity checks).
  std::uint64_t executedEvents() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace avmon::sim
