#include "sim/network.hpp"

#include <memory>
#include <type_traits>
#include <utility>

namespace avmon::sim {

RpcResponse Endpoint::onRpc(const NodeId& /*from*/, const RpcRequest& request) {
  // Generic liveness acknowledgement: the network only dispatches to
  // attached, up endpoints, so merely answering proves aliveness. Each
  // request gets an empty response of its matching type, keeping the
  // RpcTraits contract (exchange() relies on it) for endpoints that don't
  // speak the protocol behind the request.
  return std::visit(
      [](const auto& req) -> RpcResponse {
        using Request = std::decay_t<decltype(req)>;
        return typename RpcTraits<Request>::Response{};
      },
      request);
}

std::uint32_t Network::slotFor(const NodeId& id) {
  const auto [it, inserted] =
      slotOf_.emplace(id, static_cast<std::uint32_t>(slots_.size()));
  if (inserted) {
    slots_.emplace_back();
    NodeState& state = slots_.back();
    // The per-sender stream is keyed by (network seed, node id) — not by
    // slot number or attach order — so the same node gets the same stream
    // in every partitioning of the population.
    const std::uint64_t idKey =
        (static_cast<std::uint64_t>(id.ip()) << 16) | id.port();
    state.stream = Rng(splitmix64Mix(streamBase_ ^ splitmix64Mix(idKey)));
    // The stream is shard-owned state like the network itself.
    AVMON_DET_BIND_LIKE(state.stream.detTag, detTag);
    state.globalIndex =
        router_ != nullptr ? router_->globalIndexOf(id) : it->second;
  }
  return it->second;
}

std::uint32_t Network::findSlot(const NodeId& id) const {
  const auto it = slotOf_.find(id);
  return it == slotOf_.end() ? kNoSlot : it->second;
}

void Network::attach(const NodeId& id, Endpoint& endpoint) {
  AVMON_DET_CHECK(detTag, "Network::attach");
  slots_[slotFor(id)].endpoint = &endpoint;
}

void Network::detach(const NodeId& id) {
  AVMON_DET_CHECK(detTag, "Network::detach");
  if (const std::uint32_t slot = findSlot(id); slot != kNoSlot) {
    slots_[slot].endpoint = nullptr;
    slots_[slot].up = false;
  }
}

void Network::setUp(const NodeId& id, bool up) {
  AVMON_DET_CHECK(detTag, "Network::setUp");
  slots_[slotFor(id)].up = up;
}

bool Network::isUp(const NodeId& id) const {
  const std::uint32_t slot = findSlot(id);
  return slot != kNoSlot && slots_[slot].up &&
         slots_[slot].endpoint != nullptr;
}

std::uint32_t Network::globalIndexOf(const NodeId& id) {
  // Sharded mode answers from the router's global map without touching
  // local slots; single-shard mode's slot index *is* the global index.
  return router_ != nullptr ? router_->globalIndexOf(id) : slotFor(id);
}

SimDuration Network::sampleLatency(NodeState& sender, std::uint32_t toIndex) {
  SimDuration lo = config_.minLatency;
  SimDuration hi = config_.maxLatency;
  if (plan_ != nullptr) {
    plan_->latencyBand(sim_.now(), sender.globalIndex, toIndex, lo, hi);
  }
  return lo + static_cast<SimDuration>(sender.stream.below(
                  static_cast<std::uint64_t>(hi - lo + 1)));
}

void Network::send(const NodeId& from, const NodeId& to, Message message) {
  AVMON_DET_CHECK(detTag, "Network::send");
  // Only a fault plan needs the target's index at send time (band
  // selection); resolve it before binding the sender reference.
  const std::uint32_t toIndex = plan_ != nullptr ? globalIndexOf(to) : 0;
  NodeState& sender = slots_[slotFor(from)];
  charge(sender, wireBytes(message));
  if (config_.messageDropProbability > 0 &&
      sender.stream.chance(config_.messageDropProbability)) {
    ++lost_;
    return;
  }
  const SimDuration latency = sampleLatency(sender, toIndex);
  if (router_ != nullptr) {
    // Sharded mode: every inter-node delivery — even one whose target
    // lives on this shard — crosses the hand-off layer, so insertion
    // order at the destination depends only on (due, sender, sender seq),
    // never on which shard the target happens to share with the sender.
    router_->handoffMessage(sim_.now() + latency, nextKey(sender), from, to,
                            std::move(message));
    return;
  }
  // The target's slot is resolved now; delivery addresses it directly. The
  // closure fits InlineAction's inline buffer, so scheduling a delivery
  // allocates nothing.
  const std::uint32_t toSlot = slotFor(to);
  sim_.after(latency, [this, from, toSlot, message = std::move(message)]() {
    deliver(from, toSlot, message);
  });
}

void Network::deliver(const NodeId& from, std::uint32_t toSlot,
                      const Message& message) {
  if (plan_ != nullptr) {
    // Partition cut is judged at the delivery instant — a message launched
    // before the window opens but arriving inside it is lost, exactly like
    // a target that died mid-flight.
    const std::uint32_t fromIndex = globalIndexOf(from);
    if (!plan_->reachable(sim_.now(), fromIndex,
                          slots_[toSlot].globalIndex)) {
      ++lost_;
      return;
    }
  }
  NodeState& target = slots_[toSlot];
  if (!target.up || target.endpoint == nullptr) {
    ++lost_;
    return;
  }
  ++delivered_;
  target.endpoint->onMessage(from, message);
}

void Network::serveRpc(const NodeId& from, std::uint32_t toSlot,
                       const RpcRequest& request, RpcTicket ticket) {
  // The caller's index is needed for both the partition check and the
  // response leg's latency band; resolve before binding any slot ref.
  const std::uint32_t callerIndex =
      plan_ != nullptr ? globalIndexOf(from) : 0;
  NodeState& target = slots_[toSlot];
  if (!target.up || target.endpoint == nullptr) {
    return;  // unreachable target: the caller's backstop reports it
  }
  if (plan_ != nullptr &&
      !plan_->reachable(sim_.now(), callerIndex, target.globalIndex)) {
    // Partitioned at request arrival: the request never lands, so the
    // target spends nothing and the caller's rpcTimeout backstop fires —
    // indistinguishable from the target dying mid-flight.
    return;
  }
  // The target serves the request and spends its response bytes even if
  // the caller's deadline has already passed — a late response is still
  // sent, just never seen.
  charge(target, responseWireBytes(request));
  Endpoint* endpoint = target.endpoint;
  RpcResponse response = endpoint->onRpc(from, request);
  NodeState& responder = slots_[toSlot];  // re-fetch: onRpc may grow slots_
  const SimDuration latency = sampleLatency(responder, callerIndex);
  if (router_ != nullptr) {
    router_->handoffRpcResponse(sim_.now() + latency, nextKey(responder), from,
                                std::move(response), std::move(ticket));
    return;
  }
  sim_.after(latency, [response = std::move(response),
                       ticket = std::move(ticket)]() mutable {
    completeRpc(std::move(response), ticket);
  });
}

void Network::completeRpc(RpcResponse response, const RpcTicket& ticket) {
  if (*ticket.settled) return;  // beaten by the deadline
  *ticket.settled = true;
  (*ticket.handler)(std::optional<RpcResponse>(std::move(response)));
}

void Network::scheduleHandoffDelivery(SimTime due, const NodeId& from,
                                      const NodeId& to, Message message) {
  AVMON_DET_CHECK(detTag, "Network::scheduleHandoffDelivery");
  const std::uint32_t toSlot = slotFor(to);
  sim_.at(due, [this, from, toSlot, message = std::move(message)]() {
    deliver(from, toSlot, message);
  });
}

void Network::scheduleHandoffServe(SimTime due, const NodeId& from,
                                   const NodeId& to, RpcRequest request,
                                   RpcTicket ticket) {
  AVMON_DET_CHECK(detTag, "Network::scheduleHandoffServe");
  const std::uint32_t toSlot = slotFor(to);
  sim_.at(due, [this, from, toSlot, request = std::move(request),
                ticket = std::move(ticket)]() mutable {
    serveRpc(from, toSlot, request, std::move(ticket));
  });
}

void Network::scheduleHandoffComplete(SimTime due, RpcResponse response,
                                      RpcTicket ticket) {
  AVMON_DET_CHECK(detTag, "Network::scheduleHandoffComplete");
  sim_.at(due, [response = std::move(response),
                ticket = std::move(ticket)]() mutable {
    completeRpc(std::move(response), ticket);
  });
}

std::optional<RpcResponse> Network::call(const NodeId& from, const NodeId& to,
                                         const RpcRequest& request) {
  AVMON_DET_CHECK(detTag, "Network::call");
  NodeState& sender = slots_[slotFor(from)];
  charge(sender, requestWireBytes(request));
  if (config_.rpcFailProbability > 0 &&
      sender.stream.chance(config_.rpcFailProbability)) {
    return std::nullopt;  // injected timeout; request bytes already spent
  }
  const std::uint32_t fromIndex = sender.globalIndex;
  NodeState& target = slots_[slotFor(to)];
  if (!target.up || target.endpoint == nullptr) {
    return std::nullopt;
  }
  if (plan_ != nullptr &&
      !plan_->reachable(sim_.now(), fromIndex, target.globalIndex)) {
    // Instant lane: partition judged at call time, like liveness — a
    // timeout with only the request bytes spent.
    return std::nullopt;
  }
  charge(target, responseWireBytes(request));
  // Copy the endpoint pointer first: serving the RPC may attach new nodes,
  // which can reallocate slots_ and dangle `target`.
  Endpoint* endpoint = target.endpoint;
  return endpoint->onRpc(from, request);
}

void Network::callAsyncDeferred(const NodeId& from, const NodeId& to,
                                RpcRequest request, RpcHandler handler) {
  AVMON_DET_CHECK(detTag, "Network::callAsyncDeferred");
  // Latency-modeled mode: the request leg travels, the target serves the
  // request at arrival time (so its liveness is judged then, like one-way
  // delivery), and the response leg travels back. The caller's deadline is
  // a single backstop event scheduled now, at exactly rpcTimeout: it fires
  // with nullopt unless a response landed first, so every failure mode —
  // injected fault, dead target, or a round trip slower than the deadline
  // — surfaces at the same instant and is indistinguishable by timing.
  const std::uint32_t toIndex = plan_ != nullptr ? globalIndexOf(to) : 0;
  NodeState& sender = slots_[slotFor(from)];
  charge(sender, requestWireBytes(request));
  auto settled = std::make_shared<bool>(false);
  auto sharedHandler = std::make_shared<RpcHandler>(std::move(handler));
  sim_.after(config_.rpcTimeout, [settled, sharedHandler] {
    if (*settled) return;
    *settled = true;
    (*sharedHandler)(std::nullopt);
  });
  if (config_.rpcFailProbability > 0 &&
      sender.stream.chance(config_.rpcFailProbability)) {
    return;  // the request is lost; the backstop reports the timeout
  }
  const SimDuration requestLatency = sampleLatency(sender, toIndex);
  RpcTicket ticket{settled, sharedHandler};
  if (router_ != nullptr) {
    // Sharded mode: the request leg crosses the hand-off layer to the
    // target's home shard; the response leg crosses back. The backstop
    // above stays caller-local, so every failure mode still surfaces at
    // exactly rpcTimeout.
    router_->handoffRpcRequest(sim_.now() + requestLatency, nextKey(sender),
                               from, to, std::move(request),
                               std::move(ticket));
    return;
  }
  const std::uint32_t toSlot = slotFor(to);
  sim_.after(requestLatency, [this, from, toSlot, request = std::move(request),
                              ticket = std::move(ticket)]() mutable {
    serveRpc(from, toSlot, request, std::move(ticket));
  });
}

TrafficCounters Network::traffic(const NodeId& id) const {
  const std::uint32_t slot = findSlot(id);
  return slot == kNoSlot ? TrafficCounters{} : slots_[slot].traffic;
}

void Network::resetTraffic() {
  AVMON_DET_CHECK(detTag, "Network::resetTraffic");
  for (NodeState& state : slots_) state.traffic = TrafficCounters{};
  totalTraffic_ = TrafficCounters{};
}

}  // namespace avmon::sim
