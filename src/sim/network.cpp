#include "sim/network.hpp"

#include <memory>
#include <type_traits>
#include <utility>

namespace avmon::sim {

RpcResponse Endpoint::onRpc(const NodeId& /*from*/, const RpcRequest& request) {
  // Generic liveness acknowledgement: the network only dispatches to
  // attached, up endpoints, so merely answering proves aliveness. Each
  // request gets an empty response of its matching type, keeping the
  // RpcTraits contract (exchange() relies on it) for endpoints that don't
  // speak the protocol behind the request.
  return std::visit(
      [](const auto& req) -> RpcResponse {
        using Request = std::decay_t<decltype(req)>;
        return typename RpcTraits<Request>::Response{};
      },
      request);
}

void Network::attach(const NodeId& id, Endpoint& endpoint) {
  nodes_[id].endpoint = &endpoint;
}

void Network::detach(const NodeId& id) {
  if (auto it = nodes_.find(id); it != nodes_.end()) {
    it->second.endpoint = nullptr;
    it->second.up = false;
  }
}

void Network::setUp(const NodeId& id, bool up) { nodes_[id].up = up; }

bool Network::isUp(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.up && it->second.endpoint != nullptr;
}

void Network::charge(const NodeId& id, std::size_t bytes) {
  auto& t = nodes_[id].traffic;
  t.bytesSent += bytes;
  t.messagesSent += 1;
}

SimDuration Network::sampleLatency() {
  return config_.minLatency +
         static_cast<SimDuration>(rng_.below(static_cast<std::uint64_t>(
             config_.maxLatency - config_.minLatency + 1)));
}

void Network::send(const NodeId& from, const NodeId& to, Message message) {
  charge(from, wireBytes(message));
  if (config_.messageDropProbability > 0 &&
      rng_.chance(config_.messageDropProbability)) {
    ++lost_;
    return;
  }
  const SimDuration latency = sampleLatency();
  sim_.after(latency, [this, from, to, message = std::move(message)]() {
    const auto it = nodes_.find(to);
    if (it == nodes_.end() || !it->second.up || it->second.endpoint == nullptr) {
      ++lost_;
      return;
    }
    ++delivered_;
    it->second.endpoint->onMessage(from, message);
  });
}

std::optional<RpcResponse> Network::call(const NodeId& from, const NodeId& to,
                                         const RpcRequest& request) {
  charge(from, requestWireBytes(request));
  if (config_.rpcFailProbability > 0 &&
      rng_.chance(config_.rpcFailProbability)) {
    return std::nullopt;  // injected timeout; request bytes already spent
  }
  const auto it = nodes_.find(to);
  if (it == nodes_.end() || !it->second.up || it->second.endpoint == nullptr) {
    return std::nullopt;
  }
  charge(to, responseWireBytes(request));
  return it->second.endpoint->onRpc(from, request);
}

void Network::callAsync(const NodeId& from, const NodeId& to,
                        RpcRequest request, RpcHandler handler) {
  if (!config_.deferredRpc) {
    handler(call(from, to, request));
    return;
  }
  // Latency-modeled mode: the request leg travels, the target serves the
  // request at arrival time (so its liveness is judged then, like one-way
  // delivery), and the response leg travels back. The caller's deadline is
  // a single backstop event scheduled now, at exactly rpcTimeout: it fires
  // with nullopt unless a response landed first, so every failure mode —
  // injected fault, dead target, or a round trip slower than the deadline
  // — surfaces at the same instant and is indistinguishable by timing.
  charge(from, requestWireBytes(request));
  auto settled = std::make_shared<bool>(false);
  auto sharedHandler = std::make_shared<RpcHandler>(std::move(handler));
  sim_.after(config_.rpcTimeout, [settled, sharedHandler] {
    if (*settled) return;
    *settled = true;
    (*sharedHandler)(std::nullopt);
  });
  if (config_.rpcFailProbability > 0 &&
      rng_.chance(config_.rpcFailProbability)) {
    return;  // the request is lost; the backstop reports the timeout
  }
  const SimDuration requestLatency = sampleLatency();
  sim_.after(requestLatency, [this, from, to, settled, sharedHandler,
                              request = std::move(request)]() mutable {
    const auto it = nodes_.find(to);
    if (it == nodes_.end() || !it->second.up ||
        it->second.endpoint == nullptr) {
      return;  // unreachable target: the backstop reports the timeout
    }
    // The target serves the request and spends its response bytes even if
    // the caller's deadline has already passed — a late response is still
    // sent, just never seen.
    charge(to, responseWireBytes(request));
    RpcResponse response = it->second.endpoint->onRpc(from, request);
    sim_.after(sampleLatency(), [settled, sharedHandler,
                                 response = std::move(response)]() mutable {
      if (*settled) return;  // beaten by the deadline
      *settled = true;
      (*sharedHandler)(std::move(response));
    });
  });
}

TrafficCounters Network::traffic(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? TrafficCounters{} : it->second.traffic;
}

void Network::resetTraffic() {
  for (auto& [id, state] : nodes_) state.traffic = TrafficCounters{};
}

}  // namespace avmon::sim
