#include "sim/network.hpp"

#include <memory>
#include <type_traits>
#include <utility>

namespace avmon::sim {

RpcResponse Endpoint::onRpc(const NodeId& /*from*/, const RpcRequest& request) {
  // Generic liveness acknowledgement: the network only dispatches to
  // attached, up endpoints, so merely answering proves aliveness. Each
  // request gets an empty response of its matching type, keeping the
  // RpcTraits contract (exchange() relies on it) for endpoints that don't
  // speak the protocol behind the request.
  return std::visit(
      [](const auto& req) -> RpcResponse {
        using Request = std::decay_t<decltype(req)>;
        return typename RpcTraits<Request>::Response{};
      },
      request);
}

std::uint32_t Network::slotFor(const NodeId& id) {
  const auto [it, inserted] =
      slotOf_.emplace(id, static_cast<std::uint32_t>(slots_.size()));
  if (inserted) slots_.emplace_back();
  return it->second;
}

std::uint32_t Network::findSlot(const NodeId& id) const {
  const auto it = slotOf_.find(id);
  return it == slotOf_.end() ? kNoSlot : it->second;
}

void Network::attach(const NodeId& id, Endpoint& endpoint) {
  slots_[slotFor(id)].endpoint = &endpoint;
}

void Network::detach(const NodeId& id) {
  if (const std::uint32_t slot = findSlot(id); slot != kNoSlot) {
    slots_[slot].endpoint = nullptr;
    slots_[slot].up = false;
  }
}

void Network::setUp(const NodeId& id, bool up) { slots_[slotFor(id)].up = up; }

bool Network::isUp(const NodeId& id) const {
  const std::uint32_t slot = findSlot(id);
  return slot != kNoSlot && slots_[slot].up &&
         slots_[slot].endpoint != nullptr;
}

SimDuration Network::sampleLatency() {
  return config_.minLatency +
         static_cast<SimDuration>(rng_.below(static_cast<std::uint64_t>(
             config_.maxLatency - config_.minLatency + 1)));
}

void Network::send(const NodeId& from, const NodeId& to, Message message) {
  charge(slots_[slotFor(from)], wireBytes(message));
  if (config_.messageDropProbability > 0 &&
      rng_.chance(config_.messageDropProbability)) {
    ++lost_;
    return;
  }
  const SimDuration latency = sampleLatency();
  // The target's slot is resolved now; delivery addresses it directly. The
  // closure fits InlineAction's inline buffer, so scheduling a delivery
  // allocates nothing.
  const std::uint32_t toSlot = slotFor(to);
  sim_.after(latency, [this, from, toSlot, message = std::move(message)]() {
    NodeState& target = slots_[toSlot];
    if (!target.up || target.endpoint == nullptr) {
      ++lost_;
      return;
    }
    ++delivered_;
    target.endpoint->onMessage(from, message);
  });
}

std::optional<RpcResponse> Network::call(const NodeId& from, const NodeId& to,
                                         const RpcRequest& request) {
  charge(slots_[slotFor(from)], requestWireBytes(request));
  if (config_.rpcFailProbability > 0 &&
      rng_.chance(config_.rpcFailProbability)) {
    return std::nullopt;  // injected timeout; request bytes already spent
  }
  NodeState& target = slots_[slotFor(to)];
  if (!target.up || target.endpoint == nullptr) {
    return std::nullopt;
  }
  charge(target, responseWireBytes(request));
  // Copy the endpoint pointer first: serving the RPC may attach new nodes,
  // which can reallocate slots_ and dangle `target`.
  Endpoint* endpoint = target.endpoint;
  return endpoint->onRpc(from, request);
}

void Network::callAsyncDeferred(const NodeId& from, const NodeId& to,
                                RpcRequest request, RpcHandler handler) {
  // Latency-modeled mode: the request leg travels, the target serves the
  // request at arrival time (so its liveness is judged then, like one-way
  // delivery), and the response leg travels back. The caller's deadline is
  // a single backstop event scheduled now, at exactly rpcTimeout: it fires
  // with nullopt unless a response landed first, so every failure mode —
  // injected fault, dead target, or a round trip slower than the deadline
  // — surfaces at the same instant and is indistinguishable by timing.
  charge(slots_[slotFor(from)], requestWireBytes(request));
  auto settled = std::make_shared<bool>(false);
  auto sharedHandler = std::make_shared<RpcHandler>(std::move(handler));
  sim_.after(config_.rpcTimeout, [settled, sharedHandler] {
    if (*settled) return;
    *settled = true;
    (*sharedHandler)(std::nullopt);
  });
  if (config_.rpcFailProbability > 0 &&
      rng_.chance(config_.rpcFailProbability)) {
    return;  // the request is lost; the backstop reports the timeout
  }
  const SimDuration requestLatency = sampleLatency();
  const std::uint32_t toSlot = slotFor(to);
  sim_.after(requestLatency, [this, from, toSlot, settled, sharedHandler,
                              request = std::move(request)]() mutable {
    NodeState& target = slots_[toSlot];
    if (!target.up || target.endpoint == nullptr) {
      return;  // unreachable target: the backstop reports the timeout
    }
    // The target serves the request and spends its response bytes even if
    // the caller's deadline has already passed — a late response is still
    // sent, just never seen.
    charge(target, responseWireBytes(request));
    Endpoint* endpoint = target.endpoint;
    RpcResponse response = endpoint->onRpc(from, request);
    sim_.after(sampleLatency(), [settled, sharedHandler,
                                 response = std::move(response)]() mutable {
      if (*settled) return;  // beaten by the deadline
      *settled = true;
      (*sharedHandler)(std::move(response));
    });
  });
}

TrafficCounters Network::traffic(const NodeId& id) const {
  const std::uint32_t slot = findSlot(id);
  return slot == kNoSlot ? TrafficCounters{} : slots_[slot].traffic;
}

void Network::resetTraffic() {
  for (NodeState& state : slots_) state.traffic = TrafficCounters{};
}

}  // namespace avmon::sim
