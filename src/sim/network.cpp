#include "sim/network.hpp"

#include <utility>

namespace avmon::sim {

void Network::attach(const NodeId& id, Endpoint& endpoint) {
  nodes_[id].endpoint = &endpoint;
}

void Network::detach(const NodeId& id) {
  if (auto it = nodes_.find(id); it != nodes_.end()) {
    it->second.endpoint = nullptr;
    it->second.up = false;
  }
}

void Network::setUp(const NodeId& id, bool up) { nodes_[id].up = up; }

bool Network::isUp(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.up && it->second.endpoint != nullptr;
}

void Network::charge(const NodeId& id, std::size_t bytes) {
  auto& t = nodes_[id].traffic;
  t.bytesSent += bytes;
  t.messagesSent += 1;
}

void Network::send(const NodeId& from, const NodeId& to, std::any payload,
                   std::size_t bytes) {
  charge(from, bytes);
  if (config_.messageDropProbability > 0 &&
      rng_.chance(config_.messageDropProbability)) {
    ++lost_;
    return;
  }
  const SimDuration latency =
      config_.minLatency +
      static_cast<SimDuration>(rng_.below(static_cast<std::uint64_t>(
          config_.maxLatency - config_.minLatency + 1)));
  sim_.after(latency, [this, from, to, payload = std::move(payload)]() {
    const auto it = nodes_.find(to);
    if (it == nodes_.end() || !it->second.up || it->second.endpoint == nullptr) {
      ++lost_;
      return;
    }
    ++delivered_;
    it->second.endpoint->onMessage(from, payload);
  });
}

Endpoint* Network::rpc(const NodeId& from, const NodeId& to,
                       std::size_t requestBytes, std::size_t responseBytes) {
  charge(from, requestBytes);
  if (config_.rpcFailProbability > 0 &&
      rng_.chance(config_.rpcFailProbability)) {
    return nullptr;  // injected timeout; request bytes already spent
  }
  const auto it = nodes_.find(to);
  if (it == nodes_.end() || !it->second.up || it->second.endpoint == nullptr) {
    return nullptr;
  }
  charge(to, responseBytes);
  return it->second.endpoint;
}

TrafficCounters Network::traffic(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? TrafficCounters{} : it->second.traffic;
}

void Network::resetTraffic() {
  for (auto& [id, state] : nodes_) state.traffic = TrafficCounters{};
}

}  // namespace avmon::sim
