#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace avmon::sim {

Simulator::Simulator() : buckets_(kBucketCount) {}

void Simulator::at(SimTime when, Action action) {
  AVMON_DET_CHECK(detTag, "Simulator::at");
  if (when < now_) when = now_;
  if (size_ == 0) cursor_ = now_;  // empty queue: re-anchor the window
  ++size_;
  if (static_cast<std::uint64_t>(when - cursor_) < kBucketCount) {
    bucketFor(when).push(std::move(action));
    ++ringCount_;
  } else {
    overflow_.push_back(OverflowEvent{when, nextSeq_++, std::move(action)});
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void Simulator::every(SimTime firstAt, SimDuration period,
                      std::function<bool()> keepGoing) {
  at(firstAt, [this, period, fn = std::move(keepGoing)]() mutable {
    if (!fn()) return;
    every(now_ + period, period, std::move(fn));
  });
}

void Simulator::promote() {
  const SimTime limit = cursor_ + static_cast<SimTime>(kBucketCount);
  while (!overflow_.empty() && overflow_.front().when < limit) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    OverflowEvent ev = std::move(overflow_.back());
    overflow_.pop_back();
    bucketFor(ev.when).push(std::move(ev.action));
    ++ringCount_;
  }
}

SimTime Simulator::nextEventTime() const noexcept {
  if (size_ == 0) return kNoPendingEvent;
  SimTime best = kNoPendingEvent;
  if (ringCount_ > 0) {
    // Every ring event lives in [cursor_, cursor_ + kBucketCount), and the
    // bucket at (t & kMask) holds exactly the events at time t within that
    // window — so the first occupied bucket in window order is the minimum.
    for (std::size_t off = 0; off < kBucketCount; ++off) {
      const SimTime t = cursor_ + static_cast<SimTime>(off);
      if (!buckets_[static_cast<std::size_t>(t) & kMask].empty()) {
        best = t;
        break;
      }
    }
  }
  if (!overflow_.empty() && overflow_.front().when < best) {
    best = overflow_.front().when;
  }
  return best;
}

bool Simulator::findNext(SimTime until) {
  if (size_ == 0) return false;
  for (;;) {
    if (!bucketFor(cursor_).empty()) return cursor_ <= until;
    if (cursor_ >= until) return false;
    if (ringCount_ == 0) {
      // Everything pending lives in the overflow tier: jump the window
      // straight to its head instead of walking empty buckets.
      cursor_ = std::min(until, overflow_.front().when);
    } else {
      ++cursor_;
    }
    promote();
  }
}

void Simulator::runUntil(SimTime until) {
  AVMON_DET_CHECK(detTag, "Simulator::runUntil");
  while (findNext(until)) {
    InlineAction action = bucketFor(cursor_).pop();
    --ringCount_;
    --size_;
    now_ = cursor_;
    ++executed_;
    action();
  }
  if (now_ < until) now_ = until;
}

bool Simulator::step() {
  AVMON_DET_CHECK(detTag, "Simulator::step");
  if (!findNext(std::numeric_limits<SimTime>::max())) return false;
  InlineAction action = bucketFor(cursor_).pop();
  --ringCount_;
  --size_;
  now_ = cursor_;
  ++executed_;
  action();
  return true;
}

}  // namespace avmon::sim
