#include "sim/simulator.hpp"

#include <utility>

namespace avmon::sim {

void Simulator::at(SimTime when, Action action) {
  if (when < now_) when = now_;
  queue_.push(Event{when, nextSeq_++, std::move(action)});
}

void Simulator::every(SimTime firstAt, SimDuration period,
                      std::function<bool()> keepGoing) {
  at(firstAt, [this, period, fn = std::move(keepGoing)]() mutable {
    if (!fn()) return;
    every(now_ + period, period, std::move(fn));
  });
}

void Simulator::runUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    step();
  }
  if (now_ < until) now_ = until;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Move the action out before popping; pop invalidates the reference.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.when;
  ++executed_;
  ev.action();
  return true;
}

}  // namespace avmon::sim
