#include "sim/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace avmon::sim {

namespace {

[[noreturn]] void invalid(const std::string& what) {
  throw std::invalid_argument("FaultPlan: " + what);
}

}  // namespace

bool FaultPlan::empty() const noexcept {
  return partitions.empty() && bursts.empty() && latencyWindows.empty() &&
         geo.regions == 0;
}

void FaultPlan::validate() const {
  for (const PartitionWindow& w : partitions) {
    if (w.end <= w.start) {
      invalid("partition window must end after it starts (start=" +
              std::to_string(w.start) + ", end=" + std::to_string(w.end) +
              ")");
    }
    if (w.groups < 2) {
      invalid("partition needs at least 2 groups, got " +
              std::to_string(w.groups));
    }
  }
  for (const BurstSpec& b : bursts) {
    if (b.duration < 1) {
      invalid("burst duration must be at least 1 tick, got " +
              std::to_string(b.duration));
    }
    if (!(b.fraction > 0.0) || b.fraction > 1.0) {
      invalid("burst fraction must be in (0, 1], got " +
              std::to_string(b.fraction));
    }
  }
  for (const LatencyWindow& w : latencyWindows) {
    if (w.end <= w.start) {
      invalid("latency window must end after it starts (start=" +
              std::to_string(w.start) + ", end=" + std::to_string(w.end) +
              ")");
    }
    if (w.minLatency < 1 || w.maxLatency < w.minLatency) {
      invalid("latency window band needs 1 <= min <= max, got [" +
              std::to_string(w.minLatency) + ", " +
              std::to_string(w.maxLatency) + "]");
    }
  }
  if (geo.regions > 0) {
    if (geo.regions < 2) {
      invalid("geo bands need at least 2 regions, got " +
              std::to_string(geo.regions));
    }
    if (geo.intraMin < 1 || geo.intraMax < geo.intraMin) {
      invalid("geo intra band needs 1 <= min <= max, got [" +
              std::to_string(geo.intraMin) + ", " +
              std::to_string(geo.intraMax) + "]");
    }
    if (geo.interMin < 1 || geo.interMax < geo.interMin) {
      invalid("geo inter band needs 1 <= min <= max, got [" +
              std::to_string(geo.interMin) + ", " +
              std::to_string(geo.interMax) + "]");
    }
  }
}

SimDuration FaultPlan::lookaheadFloor(
    SimDuration baseMinLatency) const noexcept {
  SimDuration floor = baseMinLatency;
  for (const LatencyWindow& w : latencyWindows) {
    floor = std::min(floor, w.minLatency);
  }
  if (geo.regions > 0) {
    floor = std::min({floor, geo.intraMin, geo.interMin});
  }
  return std::max<SimDuration>(1, floor);
}

std::uint32_t FaultPlan::blockOf(std::uint32_t index,
                                 std::uint32_t blocks) const noexcept {
  if (population_ == 0 || index >= population_ || blocks == 0) return 0;
  return static_cast<std::uint32_t>(static_cast<std::uint64_t>(index) *
                                    blocks / population_);
}

bool FaultPlan::reachable(SimTime at, std::uint32_t fromIndex,
                          std::uint32_t toIndex) const noexcept {
  if (fromIndex == toIndex) return true;
  for (const PartitionWindow& w : partitions) {
    if (at < w.start || at >= w.end) continue;
    if (blockOf(fromIndex, w.groups) != blockOf(toIndex, w.groups)) {
      return false;
    }
  }
  return true;
}

void FaultPlan::latencyBand(SimTime at, std::uint32_t fromIndex,
                            std::uint32_t toIndex, SimDuration& lo,
                            SimDuration& hi) const noexcept {
  for (const LatencyWindow& w : latencyWindows) {
    if (at < w.start || at >= w.end) continue;
    lo = w.minLatency;
    hi = w.maxLatency;
    return;  // first matching window wins
  }
  if (geo.regions > 0) {
    const bool intra =
        blockOf(fromIndex, geo.regions) == blockOf(toIndex, geo.regions);
    lo = intra ? geo.intraMin : geo.interMin;
    hi = intra ? geo.intraMax : geo.interMax;
  }
}

}  // namespace avmon::sim
