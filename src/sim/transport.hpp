// The transport seam: the abstract send/exchange surface AVMON's protocol
// code talks to.
//
// PR 2 made the transport typed (closed `Message` sum type, typed
// request/response RPC); this header makes it *pluggable*. Protocol code
// holds a `Transport&` and sees exactly two primitives — fire-and-forget
// `send` and asynchronous `exchangeAsync` — plus the attach/up lifecycle.
// Two backends implement it:
//
//  * sim::Network (sim/network.hpp): the deterministic simulated lane, with
//    modeled latency, injected faults, and sharded execution.
//  * net::LiveTransport (net/live_transport.hpp): the same closed variants
//    serialized onto real UDP sockets, with per-request timeout/retry in
//    place of the simulator's modeled timeout.
//
// Both map failure to the same observable: the handler fires exactly once,
// with nullopt on timeout. Protocol logic cannot tell which lane it is on —
// that property is what the live/sim cross-validation test asserts.
#pragma once

#include <cassert>
#include <functional>
#include <optional>
#include <utility>
#include <variant>

#include "common/node_id.hpp"
#include "sim/message.hpp"
#include "sim/rpc.hpp"

namespace avmon::sim {

/// Interface implemented by every protocol node attached to a transport.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Delivery of a one-way message. Receivers dispatch on the closed
  /// `Message` sum type (exhaustively, or with a catch-all for traffic
  /// they don't speak).
  virtual void onMessage(const NodeId& from, const Message& message) = 0;

  /// Serves a typed RPC. Called by the transport only while the endpoint is
  /// attached and up. The default answers every request like a liveness
  /// probe — enough for endpoints (central-baseline members, test probes)
  /// whose only RPC role is "answer if alive".
  virtual RpcResponse onRpc(const NodeId& from, const RpcRequest& request);
};

/// Completion callback for an asynchronous exchange: the response, or
/// nullopt on timeout.
using RpcHandler = std::function<void(std::optional<RpcResponse>)>;

/// Abstract transport. Backends guarantee that every callAsyncErased
/// eventually fires its handler exactly once (inline, as a simulator
/// event, or from a live event loop), and that a down/unreachable target
/// surfaces as nullopt — never as an exception or a hang.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers (or replaces) the endpoint for `id`. The endpoint must
  /// outlive the transport or be detached first. Nodes start down.
  virtual void attach(const NodeId& id, Endpoint& endpoint) = 0;

  /// Removes the endpoint; traffic to it is dropped from then on.
  virtual void detach(const NodeId& id) = 0;

  /// Marks the node up/down. Down nodes neither receive messages nor
  /// answer RPCs. (Called by the churn lifecycle, not by protocol code.)
  virtual void setUp(const NodeId& id, bool up) = 0;

  /// Sends a one-way message; charges its wire size to `from`. Delivery is
  /// best-effort: if the target is down at delivery time the message is
  /// lost silently (the sender learns nothing — deaths are silent).
  virtual void send(const NodeId& from, const NodeId& to, Message message) = 0;

  /// Type-erased asynchronous exchange. Protocol code goes through the
  /// typed `exchangeAsync` below; backends implement the erased form so
  /// the variant dispatch lives in exactly one place per backend.
  virtual void callAsyncErased(const NodeId& from, const NodeId& to,
                               RpcRequest request, RpcHandler handler) = 0;

  /// Typed asynchronous exchange: callAsyncErased with the RpcTraits
  /// mapping applied, so the handler receives optional<ConcreteResponse>.
  /// This is the form every periodic protocol exchange goes through. An
  /// onRpc override answering with the wrong response alternative is a
  /// contract violation at the *responder* — asserted here by name, and
  /// degraded to a timeout when assertions are compiled out.
  template <class Request, class F>
  void exchangeAsync(const NodeId& from, const NodeId& to, Request request,
                     F&& handler) {
    using Response = typename RpcTraits<Request>::Response;
    callAsyncErased(
        from, to, RpcRequest(std::move(request)),
        RpcHandler([h = std::forward<F>(handler)](
                       std::optional<RpcResponse> response) mutable {
          if (!response) {
            h(std::optional<Response>());
            return;
          }
          auto* typed = std::get_if<Response>(&*response);
          assert(typed != nullptr &&
                 "Endpoint::onRpc returned a response alternative that "
                 "does not match RpcTraits for the request it was sent");
          if (typed == nullptr) {
            h(std::optional<Response>());
            return;
          }
          h(std::optional<Response>(std::move(*typed)));
        }));
  }
};

}  // namespace avmon::sim
