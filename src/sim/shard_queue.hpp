// Single-producer/single-consumer hand-off queue for cross-shard traffic.
//
// Each (source shard, destination shard) pair owns one of these queues.
// During a window the source shard's thread pushes hand-off records while
// the destination shard's thread may already be draining — the queue is a
// chunked unbounded SPSC ring, so both sides progress without locks. In
// the sharded simulator the heavy synchronization actually comes from the
// window barrier (production for window k strictly precedes the drain at
// barrier k), but the queue is independently thread-safe so fault-
// injection tests can hammer it concurrently and TSan can prove it.
//
// Memory model: the producer publishes an element by a release store of
// the chunk's `filled` counter; the consumer acquires it before reading
// slots. Chunk hand-over uses a release store of `next` (producer) and an
// acquire load (consumer). Fully consumed chunks are freed by the
// consumer; the producer never revisits a full chunk.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <utility>

namespace avmon::sim {

template <class T, std::size_t ChunkSize = 128>
class SpscHandoffQueue {
  static_assert(ChunkSize >= 2, "chunks must hold at least two elements");

 public:
  SpscHandoffQueue() : head_(new Chunk), tail_(head_) {}

  SpscHandoffQueue(const SpscHandoffQueue&) = delete;
  SpscHandoffQueue& operator=(const SpscHandoffQueue&) = delete;

  ~SpscHandoffQueue() {
    Chunk* c = head_;
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
  }

  /// Producer side. Never blocks; allocates a fresh chunk when the tail
  /// chunk fills up (steady-state cost is one relaxed load + one release
  /// store per push).
  void push(T item) {
    Chunk* c = tail_;
    std::size_t n = c->filled.load(std::memory_order_relaxed);
    if (n == ChunkSize) {
      Chunk* fresh = new Chunk;
      // Publish the link only after the chunk is fully constructed.
      c->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      c = fresh;
      n = 0;
    }
    c->slots[n] = std::move(item);
    c->filled.store(n + 1, std::memory_order_release);
  }

  /// Consumer side: moves every element published so far into `out`
  /// (appending), in FIFO order. Returns the number drained. Elements
  /// pushed concurrently with the drain are picked up either now or by
  /// the next drain — never lost, never duplicated.
  template <class OutVector>
  std::size_t drainInto(OutVector& out) {
    std::size_t drained = 0;
    for (;;) {
      Chunk* c = head_;
      const std::size_t ready = c->filled.load(std::memory_order_acquire);
      while (consumed_ < ready) {
        out.push_back(std::move(c->slots[consumed_++]));
        ++drained;
      }
      if (ready < ChunkSize) break;  // producer is still on this chunk
      Chunk* next = c->next.load(std::memory_order_acquire);
      if (next == nullptr) break;  // full chunk, link not published yet
      head_ = next;
      consumed_ = 0;
      delete c;
    }
    return drained;
  }

  /// Consumer-side emptiness probe (exact once producers are quiescent,
  /// conservative while they are not).
  bool empty() const {
    const Chunk* c = head_;
    return consumed_ == c->filled.load(std::memory_order_acquire) &&
           c->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Chunk {
    std::array<T, ChunkSize> slots{};
    std::atomic<std::size_t> filled{0};
    std::atomic<Chunk*> next{nullptr};
  };

  // Consumer-owned cursor.
  Chunk* head_;
  std::size_t consumed_ = 0;
  // Producer-owned cursor.
  Chunk* tail_;
};

}  // namespace avmon::sim
