// Simulated network: reliable, timely delivery between alive nodes.
//
// The paper's system model assumes "communication between pairs of nodes is
// reliable and timely if both nodes are currently alive". We model that
// directly:
//
//  * One-way messages (JOIN, NOTIFY) are delivered after a small random
//    latency; if the target is down at delivery time the message is lost
//    silently (the sender learns nothing — deaths are silent).
//  * Synchronous exchanges (coarse-view ping, CV fetch, monitoring ping)
//    are modeled as an instantaneous RPC: the caller gets direct access to
//    the target endpoint if and only if the target is up right now.
//    Because protocol periods are minutes and network latency is
//    milliseconds, collapsing the RTT does not affect any metric the paper
//    reports; it removes a large constant factor of simulator events.
//
// The network also owns per-node bandwidth accounting (outgoing bytes and
// messages), which feeds the paper's bandwidth figures (Section 5.1, 5.4).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace avmon::sim {

/// Interface implemented by every protocol node attached to the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Delivery of a one-way message. `payload` holds a protocol-defined
  /// struct; receivers std::any_cast to the types they understand.
  virtual void onMessage(const NodeId& from, const std::any& payload) = 0;
};

/// Latency and fault model.
struct NetworkConfig {
  SimDuration minLatency = 10 * kMillisecond;
  SimDuration maxLatency = 80 * kMillisecond;

  /// Failure injection (default off, matching the paper's reliable-network
  /// model): probability that a one-way message is silently dropped, and
  /// that an RPC times out despite the target being up. Used by resilience
  /// tests — the protocol must still converge, just more slowly, because
  /// JOIN/NOTIFY losses are repaired by later rounds.
  double messageDropProbability = 0.0;
  double rpcFailProbability = 0.0;
};

/// Per-node traffic counters (outgoing direction, as in the paper's
/// "Outgoing Bytes per Second" figure).
struct TrafficCounters {
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesSent = 0;
};

/// Simulated network switchboard. Endpoints attach under their NodeId; an
/// external lifecycle manager toggles per-node aliveness as churn dictates.
class Network {
 public:
  Network(Simulator& sim, NetworkConfig config, Rng rng)
      : sim_(sim), config_(config), rng_(std::move(rng)) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers (or replaces) the endpoint for `id`. The endpoint must
  /// outlive the network or be detached first. Nodes start down.
  void attach(const NodeId& id, Endpoint& endpoint);

  /// Removes the endpoint; pending messages to it are dropped on delivery.
  void detach(const NodeId& id);

  /// Marks the node up/down. Down nodes neither receive messages nor answer
  /// RPCs. (Called by the churn lifecycle, not by protocol code.)
  void setUp(const NodeId& id, bool up);

  /// True if the node is attached and currently up.
  bool isUp(const NodeId& id) const;

  /// Sends a one-way message; charges `bytes` to `from` immediately.
  /// Delivered after a uniform random latency iff the target is up then.
  void send(const NodeId& from, const NodeId& to, std::any payload,
            std::size_t bytes);

  /// Instantaneous RPC: if `to` is up, charges request bytes to `from` and
  /// response bytes to `to`, and returns the target endpoint so the caller
  /// can invoke a protocol-specific accessor. Returns nullptr (charging
  /// only the request) if the target is down or detached — i.e., a timeout.
  Endpoint* rpc(const NodeId& from, const NodeId& to, std::size_t requestBytes,
                std::size_t responseBytes);

  /// Outgoing-traffic counters for a node (zeroes if unknown).
  TrafficCounters traffic(const NodeId& id) const;

  /// Resets every traffic counter (used to scope measurement windows).
  void resetTraffic();

  /// Total messages delivered (for tests).
  std::uint64_t delivered() const noexcept { return delivered_; }

  /// Total messages lost because the target was down/detached (for tests).
  std::uint64_t lost() const noexcept { return lost_; }

 private:
  struct NodeState {
    Endpoint* endpoint = nullptr;
    bool up = false;
    TrafficCounters traffic;
  };

  void charge(const NodeId& id, std::size_t bytes);

  Simulator& sim_;
  NetworkConfig config_;
  Rng rng_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace avmon::sim
