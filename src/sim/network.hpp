// Simulated network: reliable, timely delivery between alive nodes.
//
// The paper's system model assumes "communication between pairs of nodes is
// reliable and timely if both nodes are currently alive". We model that
// directly:
//
//  * One-way messages (JOIN, NOTIFY, ...) are typed `Message` alternatives
//    (sim/message.hpp), delivered after a small random latency; if the
//    target is down at delivery time the message is lost silently (the
//    sender learns nothing — deaths are silent).
//  * Synchronous exchanges (coarse-view ping, CV fetch, swap, monitoring
//    ping) are typed `RpcRequest`/`RpcResponse` pairs (sim/rpc.hpp),
//    modeled by default as an instantaneous RPC: the caller gets the
//    target's response if and only if the target is up right now, and a
//    timeout otherwise (empty optional; request bytes spent, response
//    bytes not). Because protocol periods are minutes and network latency
//    is milliseconds, collapsing the RTT does not affect any metric the
//    paper reports; it removes a large constant factor of simulator
//    events. Protocol code issues every exchange through `callAsync` /
//    `exchangeAsync`; with `NetworkConfig::deferredRpc` off (the default)
//    the completion handler runs inline and `call` is the degenerate
//    instantaneous case, with it on both RPC legs travel with modeled
//    latency and the handler fires as a simulator event.
//
// Node bookkeeping is slot-based: a NodeId is resolved to a dense slot
// index once per operation (one hash probe), and everything that happens
// later — latency-delayed delivery in particular — addresses the slot
// directly instead of re-probing the map. Slots are never recycled, so a
// captured slot index stays valid across detach/attach cycles.
//
// The network also owns per-node bandwidth accounting (outgoing bytes and
// messages), which feeds the paper's bandwidth figures (Section 5.1, 5.4).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/det_checks.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/fault_plan.hpp"
#include "sim/message.hpp"
#include "sim/rpc.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"

namespace avmon::sim {

/// Latency and fault model.
struct NetworkConfig {
  SimDuration minLatency = 10 * kMillisecond;
  SimDuration maxLatency = 80 * kMillisecond;

  /// Failure injection (default off, matching the paper's reliable-network
  /// model): probability that a one-way message is silently dropped, and
  /// that an RPC times out despite the target being up. Used by resilience
  /// tests — the protocol must still converge, just more slowly, because
  /// JOIN/NOTIFY losses are repaired by later rounds.
  double messageDropProbability = 0.0;
  double rpcFailProbability = 0.0;

  /// When true, `callAsync` models both RPC legs with real latency: the
  /// request travels for one sampled latency, the response for another,
  /// and the completion handler fires as a simulator event. When false
  /// (default), `callAsync` completes inline through the instantaneous
  /// `call` (the paper's collapsed-RTT accounting) with zero allocations.
  bool deferredRpc = false;

  /// How long a deferred caller waits before declaring a timeout (the
  /// handler fires with nullopt after this much simulated time).
  SimDuration rpcTimeout = 200 * kMillisecond;
};

/// Per-node traffic counters (outgoing direction, as in the paper's
/// "Outgoing Bytes per Second" figure).
struct TrafficCounters {
  std::uint64_t bytesSent = 0;
  std::uint64_t messagesSent = 0;
};

/// Shard-count-invariant ordering key carried by every cross-shard
/// hand-off: the sender's global node index plus a per-sender sequence
/// number. Events due at the same instant are inserted into their
/// destination shard in (due, src, seq) order, which depends only on what
/// each node did — never on how the population was partitioned — so any
/// shard count replays the same global execution order.
struct HandoffKey {
  std::uint32_t src = 0;
  std::uint64_t seq = 0;
};

/// Caller-side completion state of an in-flight deferred RPC. The ticket
/// travels with the request to the target shard and back; both fields are
/// only ever dereferenced in the caller's shard (serve side just carries
/// them), so no locking is needed beyond the barrier hand-off.
struct RpcTicket {
  std::shared_ptr<bool> settled;
  std::shared_ptr<RpcHandler> handler;
};

/// Hook a sharded driver installs on each shard's Network. When present,
/// every inter-node hand-off (one-way delivery, deferred-RPC request leg,
/// deferred-RPC response leg) is routed through it instead of being
/// scheduled directly, so the driver can carry it across the shard
/// boundary and insert it at a window barrier in deterministic key order.
class CrossShardRouter {
 public:
  virtual ~CrossShardRouter() = default;

  /// Global (partition-independent) index of a registered node.
  virtual std::uint32_t globalIndexOf(const NodeId& id) const = 0;

  /// One-way message, already charged/rolled/latency-stamped by the
  /// sending shard; due for delivery at `due` on `to`'s home shard.
  virtual void handoffMessage(SimTime due, HandoffKey key, const NodeId& from,
                              const NodeId& to, Message message) = 0;

  /// Deferred-RPC request leg, arriving at `to`'s home shard at `due`.
  virtual void handoffRpcRequest(SimTime due, HandoffKey key,
                                 const NodeId& from, const NodeId& to,
                                 RpcRequest request, RpcTicket ticket) = 0;

  /// Deferred-RPC response leg, completing on the *caller*'s home shard
  /// (`caller`) at `due`.
  virtual void handoffRpcResponse(SimTime due, HandoffKey key,
                                  const NodeId& caller, RpcResponse response,
                                  RpcTicket ticket) = 0;
};

/// Simulated network switchboard. Endpoints attach under their NodeId; an
/// external lifecycle manager toggles per-node aliveness as churn dictates.
/// One of the two Transport backends (the other being net::LiveTransport,
/// which carries the same closed variants over real UDP sockets).
class Network final : public Transport {
 public:
  /// `rng` seeds the network's randomness. Internally every attached node
  /// gets its own latency/fault stream derived from (rng's first output,
  /// node id), so the draws a sender consumes depend only on that sender's
  /// own operation order — the property that lets a sharded run reproduce
  /// a single-shard run bit-for-bit. Two Networks built from equal-seeded
  /// Rngs give every node identical streams.
  Network(Simulator& sim, NetworkConfig config, Rng rng)
      : sim_(sim), config_(config), rng_(std::move(rng)),
        streamBase_(rng_()) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers (or replaces) the endpoint for `id`. The endpoint must
  /// outlive the network or be detached first. Nodes start down. Traffic
  /// counters survive a detach/attach cycle (they belong to the node id,
  /// not the endpoint object).
  void attach(const NodeId& id, Endpoint& endpoint) override;

  /// Shard-ownership tag for the determinism sentinel (see
  /// common/det_checks.hpp); expands to nothing unless AVMON_DET_CHECKS.
  /// Per-sender streams created in slotFor() inherit this binding.
  AVMON_DET_TAG(detTag);

  /// Removes the endpoint; pending messages to it are dropped on delivery.
  void detach(const NodeId& id) override;

  /// Marks the node up/down. Down nodes neither receive messages nor answer
  /// RPCs. (Called by the churn lifecycle, not by protocol code.)
  void setUp(const NodeId& id, bool up) override;

  /// True if the node is attached and currently up.
  bool isUp(const NodeId& id) const;

  /// Sends a one-way message; charges its wire size to `from` immediately.
  /// Delivered after a uniform random latency iff the target is up then.
  void send(const NodeId& from, const NodeId& to, Message message) override;

  /// Instantaneous typed exchange. Charges the request leg to `from`
  /// unconditionally; if the target is up (and the injected-failure roll
  /// passes), charges the response leg to `to`, dispatches the request to
  /// the target's onRpc, and returns its response. Otherwise returns
  /// nullopt — a timeout with only the request bytes spent. This is the
  /// single place the reliable/faulty RPC semantics live.
  std::optional<RpcResponse> call(const NodeId& from, const NodeId& to,
                                  const RpcRequest& request);

  /// Typed exchange returning the concrete response type for `Request`
  /// (e.g. exchange(x, w, CvFetchRequest{...}) -> optional<CvFetchResponse>).
  /// Protocol call sites use this; no variant handling, no downcasts. An
  /// onRpc override answering with the wrong response alternative is a
  /// contract violation at the *responder* — asserted here by name, and
  /// degraded to a timeout when assertions are compiled out.
  template <class Request>
  std::optional<typename RpcTraits<Request>::Response> exchange(
      const NodeId& from, const NodeId& to, Request request) {
    auto response = call(from, to, RpcRequest(std::move(request)));
    if (!response) return std::nullopt;
    using Response = typename RpcTraits<Request>::Response;
    auto* typed = std::get_if<Response>(&*response);
    assert(typed != nullptr &&
           "Endpoint::onRpc returned a response alternative that does not "
           "match RpcTraits for the request it was sent");
    if (typed == nullptr) return std::nullopt;
    return std::move(*typed);
  }

  /// Asynchronous exchange. With deferredRpc off (default) this is exactly
  /// `call` with the result handed to `handler` before returning — no
  /// event, no allocation. With deferredRpc on, the request travels one
  /// sampled latency, the target serves it then (liveness is checked at
  /// arrival time), the response travels another latency, and `handler`
  /// fires as a simulator event — or with nullopt after `rpcTimeout` if
  /// the exchange failed.
  template <class F>
  void callAsync(const NodeId& from, const NodeId& to, RpcRequest request,
                 F&& handler) {
    if (!config_.deferredRpc) {
      std::forward<F>(handler)(call(from, to, request));
      return;
    }
    callAsyncDeferred(from, to, std::move(request),
                      RpcHandler(std::forward<F>(handler)));
  }

  /// The Transport-erased form of callAsync. Protocol code reaches this
  /// through Transport::exchangeAsync; the semantics are identical to the
  /// template above (inline completion with deferredRpc off, two modeled
  /// legs with it on).
  void callAsyncErased(const NodeId& from, const NodeId& to,
                       RpcRequest request, RpcHandler handler) override {
    if (!config_.deferredRpc) {
      handler(call(from, to, request));
      return;
    }
    callAsyncDeferred(from, to, std::move(request), std::move(handler));
  }

  // ---- sharded execution (driven by sim::ShardedSimulator) ----

  /// Installs (or clears) the cross-shard router. While set, inter-node
  /// hand-offs are pushed to the router instead of being scheduled into
  /// the local simulator; the router re-inserts them via the
  /// scheduleHandoff* methods at window barriers. Must be set before any
  /// endpoint attaches (slots cache their global index at attach time).
  void setRouter(CrossShardRouter* router) { router_ = router; }

  /// Attaches (or clears) a scheduled fault plan, shared read-only across
  /// every shard's Network. While set, partition windows make cross-group
  /// traffic vanish in flight (one-way deliveries count in lost(); RPCs
  /// surface as the caller's rpcTimeout, exactly like a mid-flight death)
  /// and latency windows / geo bands override the flat [min, max] band.
  /// Reachability and bands are pure functions of (now, sender index,
  /// target index) and the latency draw still consumes exactly one value
  /// from the sender's stream, so any shard count stays bit-identical and
  /// a null/empty plan reproduces the unfaulted run bit-for-bit. Must be
  /// installed before the run starts and outlive the network.
  void setFaultPlan(const FaultPlan* plan) { plan_ = plan; }

  /// Destination-side re-insertion of a routed one-way message: schedules
  /// local delivery at `due` (target liveness judged then, as usual).
  void scheduleHandoffDelivery(SimTime due, const NodeId& from,
                               const NodeId& to, Message message);

  /// Destination-side re-insertion of a routed RPC request leg: at `due`
  /// the target (if up) is charged the response leg and serves the
  /// request; the response travels back through the router. A down target
  /// answers nothing — the caller's rpcTimeout backstop reports it.
  void scheduleHandoffServe(SimTime due, const NodeId& from, const NodeId& to,
                            RpcRequest request, RpcTicket ticket);

  /// Caller-side re-insertion of a routed RPC response leg: at `due` the
  /// handler fires with the response unless the backstop won the race.
  void scheduleHandoffComplete(SimTime due, RpcResponse response,
                               RpcTicket ticket);

  /// Outgoing-traffic counters for a node (zeroes if unknown).
  TrafficCounters traffic(const NodeId& id) const;

  /// Aggregate outgoing counters over every node attached to this shard's
  /// network, maintained incrementally on the charge path — the streaming
  /// metrics pipeline differences these at window barriers, so a windowed
  /// bandwidth probe is O(1), never a slot scan.
  TrafficCounters totalTraffic() const noexcept { return totalTraffic_; }

  /// Resets every traffic counter, including the aggregate (used to scope
  /// measurement windows).
  void resetTraffic();

  /// Total messages delivered (for tests).
  std::uint64_t delivered() const noexcept { return delivered_; }

  /// Total messages lost because the target was down/detached (for tests).
  std::uint64_t lost() const noexcept { return lost_; }

 private:
  struct NodeState {
    Endpoint* endpoint = nullptr;
    bool up = false;
    TrafficCounters traffic;
    /// Per-sender latency/fault stream: draws depend only on this node's
    /// own operation order, never on global interleaving.
    Rng stream;
    /// Partition-independent index (from the router when sharded, the
    /// dense slot otherwise) + sequence counter forming hand-off keys.
    std::uint32_t globalIndex = 0;
    std::uint64_t handoffSeq = 0;
  };

  // Resolves `id` to its dense slot, creating one on first sight. The one
  // hash probe per (id, operation); everything downstream uses the index.
  std::uint32_t slotFor(const NodeId& id);

  // Lookup without creating (const paths); npos when unknown.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  std::uint32_t findSlot(const NodeId& id) const;

  void charge(NodeState& state, std::size_t bytes) noexcept {
    state.traffic.bytesSent += bytes;
    state.traffic.messagesSent += 1;
    totalTraffic_.bytesSent += bytes;
    totalTraffic_.messagesSent += 1;
  }

  // One latency draw from the sender's stream, over the band the fault
  // plan (if any) prescribes for (now, sender, toIndex). Exactly one draw
  // in every configuration — band selection is draw-free — so per-sender
  // stream alignment is structural, not coincidental. Callers resolve
  // `toIndex` (via globalIndexOf) *before* binding the sender reference:
  // single-shard index resolution can grow slots_.
  SimDuration sampleLatency(NodeState& sender, std::uint32_t toIndex);

  // Partition-independent index of `id`: the router's global index when
  // sharded, the dense slot (== global index) otherwise. May grow slots_
  // in single-shard mode — never call while holding a NodeState&.
  std::uint32_t globalIndexOf(const NodeId& id);

  HandoffKey nextKey(NodeState& sender) noexcept {
    return HandoffKey{sender.globalIndex, sender.handoffSeq++};
  }

  // The one place each transport rule lives, shared by the local and
  // routed lanes (so the S = 1 and S > 1 paths cannot drift apart):
  // delivery of a one-way message at its due instant...
  void deliver(const NodeId& from, std::uint32_t toSlot,
               const Message& message);
  // ...the target side of a deferred RPC (liveness at arrival, response
  // charge, onRpc, response leg — via the router when sharded)...
  void serveRpc(const NodeId& from, std::uint32_t toSlot,
                const RpcRequest& request, RpcTicket ticket);
  // ...and the caller-side completion racing the rpcTimeout backstop.
  static void completeRpc(RpcResponse response, const RpcTicket& ticket);

  // The latency-modeled two-leg exchange (deferredRpc on).
  void callAsyncDeferred(const NodeId& from, const NodeId& to,
                         RpcRequest request, RpcHandler handler);

  Simulator& sim_;
  NetworkConfig config_;
  Rng rng_;
  std::uint64_t streamBase_;
  CrossShardRouter* router_ = nullptr;
  const FaultPlan* plan_ = nullptr;
  std::unordered_map<NodeId, std::uint32_t> slotOf_;
  std::vector<NodeState> slots_;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  TrafficCounters totalTraffic_;
};

}  // namespace avmon::sim
