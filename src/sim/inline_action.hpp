// Small-buffer-optimized callable for the simulator's event queue.
//
// The event loop's hot cycle is schedule → store → fire → destroy, millions
// of times per run. std::function heap-allocates any capture larger than its
// ~16-byte SBO, which made every scheduled network delivery an allocation.
// InlineAction embeds captures up to kInlineCapacity bytes (sized so the
// largest hot-path closure — a message delivery carrying a sim::Message
// variant — fits) directly in the event record; larger closures fall back to
// one heap allocation, so correctness never depends on the capture size.
//
// Move-only, like the events it carries: an action runs exactly once.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace avmon::sim {

class InlineAction {
 public:
  /// Inline capture capacity in bytes. At least 48 by contract (enough for
  /// a this-pointer plus several words of state); sized in practice for the
  /// network's delivery closure so steady-state scheduling never allocates.
  static constexpr std::size_t kInlineCapacity = 80;
  static_assert(kInlineCapacity >= 48, "contract: >= 48 bytes inline");

  InlineAction() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor): callable
    using Fn = std::decay_t<F>;
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heapOps<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { moveFrom(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Invokes the stored callable. Undefined if empty.
  void operator()() { ops_->invoke(storage_); }

  /// Destroys the stored callable, leaving the action empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Whether a callable of type F would be stored inline (for tests).
  template <class F>
  static constexpr bool storedInline() noexcept {
    return fitsInline<std::decay_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    // Move-constructs into dst from src, then destroys src's callable.
    void (*relocate)(unsigned char* src, unsigned char* dst) noexcept;
    void (*destroy)(unsigned char*) noexcept;
  };

  template <class Fn>
  static constexpr bool fitsInline() noexcept {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr Ops inlineOps{
      [](unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](unsigned char* src, unsigned char* dst) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* s) noexcept {
        std::launder(reinterpret_cast<Fn*>(s))->~Fn();
      },
  };

  template <class Fn>
  static constexpr Ops heapOps{
      [](unsigned char* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](unsigned char* src, unsigned char* dst) noexcept {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](unsigned char* s) noexcept { delete *reinterpret_cast<Fn**>(s); },
  };

  void moveFrom(InlineAction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace avmon::sim
