// Deterministic, time-scheduled fault injection for the simulated network.
//
// A FaultPlan is a declarative schedule of adversity attached to every
// shard's Network before a run starts:
//
//  * Partition windows: over [start, end) the population (by global node
//    index) is split into `groups` contiguous blocks; traffic between
//    different blocks is lost *in flight* — one-way messages at their
//    delivery instant (counted in lost()), deferred-RPC request legs by the
//    caller's rpcTimeout backstop — exactly the churn-mid-flight semantics,
//    so a partition is indistinguishable from the far side dying.
//  * Correlated failure bursts: a contiguous cluster holding `fraction` of
//    the population is killed at `at` and rejoins at `at + duration`. The
//    plan only declares bursts; the experiment layer applies them to the
//    availability trace before the world is built, so ground truth,
//    bootstrap picks, and per-node availability all stay consistent.
//  * Latency regimes: windows replacing the flat [min, max] band, and an
//    optional geo-clustered band (contiguous regions, intra/inter bands)
//    that replaces the flat band outside those windows.
//
// Determinism contract: the plan never draws randomness. Reachability and
// the active latency band are pure functions of (time, sender global index,
// target global index), and the latency draw itself still consumes exactly
// one value from the sender's per-sender stream — so behavior is
// partition-independent and bit-identical across shard counts, and a plan
// with no entries reproduces the unfaulted run bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace avmon::sim {

/// Over [start, end) the population is split into `groups` contiguous
/// blocks by global node index; cross-block traffic is lost in flight.
struct PartitionWindow {
  SimTime start = 0;
  SimTime end = 0;
  std::uint32_t groups = 2;
};

/// Correlated failure burst: a contiguous cluster covering `fraction` of
/// the population dies at `at` and rejoins at `at + duration`. Declared
/// here, applied to the availability trace by the experiment layer.
struct BurstSpec {
  SimTime at = 0;
  SimDuration duration = 0;
  double fraction = 0.0;
};

/// Over [start, end) every pair's latency band becomes [minLatency,
/// maxLatency], overriding both the flat band and the geo bands.
struct LatencyWindow {
  SimTime start = 0;
  SimTime end = 0;
  SimDuration minLatency = 0;
  SimDuration maxLatency = 0;
};

/// Geo-clustered latency: `regions` contiguous regions by global index;
/// same-region pairs draw from [intraMin, intraMax], cross-region pairs
/// from [interMin, interMax]. regions == 0 disables the feature and keeps
/// the flat band.
struct GeoBands {
  std::uint32_t regions = 0;
  SimDuration intraMin = 0;
  SimDuration intraMax = 0;
  SimDuration interMin = 0;
  SimDuration interMax = 0;
};

/// The full declarative schedule. Built once, bound to the population
/// size, then shared read-only by every shard's Network for the whole run.
class FaultPlan {
 public:
  std::vector<PartitionWindow> partitions;
  std::vector<BurstSpec> bursts;
  std::vector<LatencyWindow> latencyWindows;
  GeoBands geo;

  /// True when no feature is configured (the plan is a no-op).
  bool empty() const noexcept;

  /// Throws std::invalid_argument with an actionable message on nonsense
  /// (inverted windows, zero-duration bursts, bands below 1ms, ...).
  void validate() const;

  /// The lowest latency minimum any (time, pair) can observe, given the
  /// base band's minimum — the sharded simulator's lookahead window must
  /// not exceed this, or a fast-regime message could arrive inside the
  /// current window.
  SimDuration lookaheadFloor(SimDuration baseMinLatency) const noexcept;

  /// Binds the plan to the population size. Global node indices >= the
  /// population (e.g. auxiliary endpoints registered by a baseline) fall
  /// into group/region 0.
  void bindPopulation(std::uint32_t nodeCount) noexcept {
    population_ = nodeCount;
  }
  std::uint32_t population() const noexcept { return population_; }

  /// False iff some partition window active at `at` separates the two
  /// global indices. A node always reaches itself.
  bool reachable(SimTime at, std::uint32_t fromIndex,
                 std::uint32_t toIndex) const noexcept;

  /// Narrows [lo, hi] to the band active at `at` for this ordered pair:
  /// the first matching latency window wins; otherwise the geo band (when
  /// configured); otherwise the inputs are left untouched.
  void latencyBand(SimTime at, std::uint32_t fromIndex, std::uint32_t toIndex,
                   SimDuration& lo, SimDuration& hi) const noexcept;

  /// Contiguous-block assignment used by both partitions and geo regions:
  /// index -> block in [0, blocks). Out-of-population indices map to 0.
  std::uint32_t blockOf(std::uint32_t index,
                        std::uint32_t blocks) const noexcept;

 private:
  std::uint32_t population_ = 0;
};

}  // namespace avmon::sim
