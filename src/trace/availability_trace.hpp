// Availability traces: the ground-truth up/down schedule of every node.
//
// A trace fully determines a scenario's churn: when each node is born, the
// sessions during which it is up, and (optionally) when it dies for good.
// Synthetic models (STAT/SYNTH/SYNTH-BD/SYNTH-BD2) and the PlanetLab-like /
// Overnet-like workloads are all generated into this one representation and
// replayed identically, so every experiment shares one code path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/node_id.hpp"
#include "common/time.hpp"

namespace avmon::trace {

/// Half-open span of simulated time [start, end).
struct Interval {
  SimTime start = 0;
  SimTime end = 0;

  SimDuration length() const noexcept { return end - start; }
  bool contains(SimTime t) const noexcept { return t >= start && t < end; }
  friend bool operator==(const Interval& a, const Interval& b) noexcept {
    return a.start == b.start && a.end == b.end;
  }
  friend bool operator!=(const Interval& a, const Interval& b) noexcept {
    return !(a == b);
  }
};

/// The lifetime of one node: birth, optional death, and its up-sessions.
///
/// Invariants (checked by validate()): sessions are sorted, non-overlapping,
/// non-empty intervals; the first starts at or after `birth`; all end at or
/// before `death` (when present).
struct NodeTrace {
  NodeId id;
  SimTime birth = 0;
  std::optional<SimTime> death;  ///< silent permanent departure
  std::vector<Interval> sessions;
  bool isControl = false;  ///< member of the paper's measurement control group

  /// True if the node is up at instant `t`.
  bool upAt(SimTime t) const noexcept;

  /// Fraction of [from, to) during which the node is up. Returns 0 for an
  /// empty window.
  double availability(SimTime from, SimTime to) const noexcept;

  /// Time of the node's first session start, or nullopt if it never comes up.
  std::optional<SimTime> firstJoin() const noexcept;

  /// Total up-time over the whole trace.
  SimDuration totalUpTime() const noexcept;
};

/// A complete scenario schedule for a set of nodes.
class AvailabilityTrace {
 public:
  AvailabilityTrace() = default;
  AvailabilityTrace(SimDuration horizon, std::vector<NodeTrace> nodes)
      : horizon_(horizon), nodes_(std::move(nodes)) {}

  SimDuration horizon() const noexcept { return horizon_; }
  const std::vector<NodeTrace>& nodes() const noexcept { return nodes_; }
  std::vector<NodeTrace>& nodes() noexcept { return nodes_; }

  void setHorizon(SimDuration h) noexcept { horizon_ = h; }
  void add(NodeTrace n) { nodes_.push_back(std::move(n)); }

  /// Number of nodes up at instant `t`.
  std::size_t aliveCount(SimTime t) const noexcept;

  /// Time-averaged number of alive nodes over [from, to), sampled every
  /// `step`. Used to report the long-term average system size of a trace.
  double meanAliveCount(SimTime from, SimTime to, SimDuration step) const;

  /// Total nodes ever born by time `t` (the paper's N_longterm).
  std::size_t bornBy(SimTime t) const noexcept;

  /// Mean availability across nodes over [from, to) (nodes born inside the
  /// window are measured from their birth).
  double meanAvailability(SimTime from, SimTime to) const;

  /// Rounds every session boundary to a multiple of `grain` (end rounded
  /// up, start rounded down), merging any sessions that become adjacent or
  /// overlapping. Models coarse measurement granularity, e.g. the Overnet
  /// traces' 20-minute sampling.
  void quantize(SimDuration grain);

  /// Checks all NodeTrace invariants; returns false and leaves a
  /// description in `why` (if non-null) on the first violation.
  bool validate(std::string* why = nullptr) const;

 private:
  SimDuration horizon_ = 0;
  std::vector<NodeTrace> nodes_;
};

}  // namespace avmon::trace
