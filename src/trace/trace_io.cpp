#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace avmon::trace {
namespace {

constexpr const char* kMagic = "avmon-trace-v1";

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("malformed trace: " + what);
}

}  // namespace

void saveCsv(const AvailabilityTrace& trace, std::ostream& out) {
  out << kMagic << ',' << trace.horizon() << '\n';
  for (const NodeTrace& node : trace.nodes()) {
    out << node.id.ip() << ',' << node.id.port() << ',' << node.birth << ','
        << (node.death ? *node.death : SimTime{-1}) << ','
        << (node.isControl ? 1 : 0) << ',';
    for (std::size_t i = 0; i < node.sessions.size(); ++i) {
      if (i > 0) out << '|';
      out << node.sessions[i].start << ':' << node.sessions[i].end;
    }
    out << '\n';
  }
  if (!out) throw std::runtime_error("trace write failed");
}

void saveCsvFile(const AvailabilityTrace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for write: " + path);
  saveCsv(trace, f);
}

AvailabilityTrace loadCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) malformed("empty input");

  std::istringstream header(line);
  std::string magic;
  if (!std::getline(header, magic, ',') || magic != kMagic)
    malformed("bad magic (expected avmon-trace-v1)");
  SimDuration horizon = 0;
  if (!(header >> horizon)) malformed("bad horizon");

  AvailabilityTrace trace;
  trace.setHorizon(horizon);

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;

    const auto nextField = [&](const char* name) {
      if (!std::getline(row, field, ',')) malformed(std::string("missing ") + name);
      return field;
    };

    NodeTrace node;
    const auto ip = static_cast<std::uint32_t>(std::stoul(nextField("ip")));
    const auto port =
        static_cast<std::uint16_t>(std::stoul(nextField("port")));
    node.id = NodeId(ip, port);
    node.birth = std::stoll(nextField("birth"));
    const SimTime death = std::stoll(nextField("death"));
    if (death >= 0) node.death = death;
    node.isControl = nextField("control") == "1";

    std::string sessions;
    std::getline(row, sessions);  // remainder of line
    std::istringstream sess(sessions);
    std::string span;
    while (std::getline(sess, span, '|')) {
      const auto colon = span.find(':');
      if (colon == std::string::npos) malformed("bad session span: " + span);
      Interval iv;
      iv.start = std::stoll(span.substr(0, colon));
      iv.end = std::stoll(span.substr(colon + 1));
      node.sessions.push_back(iv);
    }
    trace.add(std::move(node));
  }

  std::string why;
  if (!trace.validate(&why)) malformed(why);
  return trace;
}

AvailabilityTrace loadCsvFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for read: " + path);
  return loadCsv(f);
}

}  // namespace avmon::trace
