#include "trace/availability_trace.hpp"

#include <algorithm>
#include <string>

namespace avmon::trace {

bool NodeTrace::upAt(SimTime t) const noexcept {
  // Sessions are sorted; find the first session ending after t.
  const auto it = std::upper_bound(
      sessions.begin(), sessions.end(), t,
      [](SimTime v, const Interval& s) { return v < s.end; });
  return it != sessions.end() && it->contains(t);
}

double NodeTrace::availability(SimTime from, SimTime to) const noexcept {
  if (to <= from) return 0.0;
  SimDuration up = 0;
  for (const Interval& s : sessions) {
    const SimTime lo = std::max(from, s.start);
    const SimTime hi = std::min(to, s.end);
    if (hi > lo) up += hi - lo;
  }
  return static_cast<double>(up) / static_cast<double>(to - from);
}

std::optional<SimTime> NodeTrace::firstJoin() const noexcept {
  if (sessions.empty()) return std::nullopt;
  return sessions.front().start;
}

SimDuration NodeTrace::totalUpTime() const noexcept {
  SimDuration up = 0;
  for (const Interval& s : sessions) up += s.length();
  return up;
}

std::size_t AvailabilityTrace::aliveCount(SimTime t) const noexcept {
  std::size_t n = 0;
  for (const NodeTrace& node : nodes_) n += node.upAt(t) ? 1 : 0;
  return n;
}

double AvailabilityTrace::meanAliveCount(SimTime from, SimTime to,
                                         SimDuration step) const {
  if (to <= from || step <= 0) return 0.0;
  double sum = 0.0;
  std::size_t samples = 0;
  for (SimTime t = from; t < to; t += step) {
    sum += static_cast<double>(aliveCount(t));
    ++samples;
  }
  return samples == 0 ? 0.0 : sum / static_cast<double>(samples);
}

std::size_t AvailabilityTrace::bornBy(SimTime t) const noexcept {
  std::size_t n = 0;
  for (const NodeTrace& node : nodes_) n += node.birth <= t ? 1 : 0;
  return n;
}

double AvailabilityTrace::meanAvailability(SimTime from, SimTime to) const {
  if (nodes_.empty()) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (const NodeTrace& node : nodes_) {
    const SimTime start = std::max(from, node.birth);
    const SimTime end = node.death ? std::min(to, *node.death) : to;
    if (end <= start) continue;
    sum += node.availability(start, end);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

void AvailabilityTrace::quantize(SimDuration grain) {
  if (grain <= 0) return;
  for (NodeTrace& node : nodes_) {
    for (Interval& s : node.sessions) {
      s.start = (s.start / grain) * grain;
      s.end = ((s.end + grain - 1) / grain) * grain;
    }
    // Rounding can create overlaps between neighbors; merge them.
    std::vector<Interval> merged;
    merged.reserve(node.sessions.size());
    for (const Interval& s : node.sessions) {
      if (!merged.empty() && s.start <= merged.back().end) {
        merged.back().end = std::max(merged.back().end, s.end);
      } else {
        merged.push_back(s);
      }
    }
    node.sessions = std::move(merged);
    node.birth = std::min(node.birth, node.sessions.empty()
                                          ? node.birth
                                          : node.sessions.front().start);
    if (node.death && !node.sessions.empty()) {
      node.death = std::max(*node.death, node.sessions.back().end);
    }
  }
}

bool AvailabilityTrace::validate(std::string* why) const {
  const auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  for (const NodeTrace& node : nodes_) {
    SimTime prevEnd = node.birth;
    for (const Interval& s : node.sessions) {
      if (s.end <= s.start)
        return fail("empty or inverted session at node " + node.id.toString());
      if (s.start < prevEnd)
        return fail("overlapping/unsorted sessions at node " +
                    node.id.toString());
      if (s.start < node.birth)
        return fail("session before birth at node " + node.id.toString());
      if (node.death && s.end > *node.death)
        return fail("session after death at node " + node.id.toString());
      prevEnd = s.end;
    }
  }
  return true;
}

}  // namespace avmon::trace
