#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace avmon::trace {
namespace {

/// Builder state for one node during event-driven generation.
struct NodeBuild {
  NodeTrace trace;
  bool up = false;
  SimTime sessionStart = 0;
};

/// Event kinds in the churn generator's timeline.
enum class EventKind { Toggle, Birth, Death };

struct GenEvent {
  SimTime when;
  EventKind kind;
  std::size_t node;  // Toggle only
};

struct LaterEvent {
  bool operator()(const GenEvent& a, const GenEvent& b) const noexcept {
    return a.when > b.when;
  }
};

SimDuration expDuration(Rng& rng, double ratePerHour) {
  const double hours = rng.exponential(ratePerHour);
  return std::max<SimDuration>(
      1, static_cast<SimDuration>(std::llround(hours * kHour)));
}

}  // namespace

AvailabilityTrace generateStat(const SynthParams& params) {
  std::vector<NodeTrace> nodes;
  const auto n = params.stableSize;
  nodes.reserve(n + static_cast<std::size_t>(
                        std::ceil(params.controlFraction * n)));
  std::uint32_t nextIndex = 0;
  for (std::size_t i = 0; i < n; ++i) {
    NodeTrace t;
    t.id = NodeId::fromIndex(nextIndex++);
    t.birth = 0;
    t.sessions.push_back({0, params.horizon});
    nodes.push_back(std::move(t));
  }
  const auto controlCount =
      static_cast<std::size_t>(std::llround(params.controlFraction * n));
  for (std::size_t i = 0; i < controlCount; ++i) {
    NodeTrace t;
    t.id = NodeId::fromIndex(nextIndex++);
    t.birth = params.controlJoinTime;
    t.sessions.push_back({params.controlJoinTime, params.horizon});
    t.isControl = true;
    nodes.push_back(std::move(t));
  }
  return AvailabilityTrace(params.horizon, std::move(nodes));
}

AvailabilityTrace generateSynth(const SynthParams& params) {
  Rng rng(params.seed);
  const auto n = params.stableSize;
  const double ratePerHour = params.churnPerHour;  // per-node toggle rate
  const SimDuration horizon = params.horizon;

  std::vector<NodeBuild> builds;
  std::priority_queue<GenEvent, std::vector<GenEvent>, LaterEvent> events;
  std::uint32_t nextIndex = 0;

  const auto addNode = [&](SimTime birth, bool startUp, bool isControl) {
    NodeBuild b;
    b.trace.id = NodeId::fromIndex(nextIndex++);
    b.trace.birth = birth;
    b.trace.isControl = isControl;
    b.up = startUp;
    b.sessionStart = birth;
    builds.push_back(std::move(b));
    const std::size_t idx = builds.size() - 1;
    events.push({birth + expDuration(rng, ratePerHour), EventKind::Toggle, idx});
    return idx;
  };

  // Base population: 2N nodes, half up, half down — the stationary split of
  // a symmetric alternating renewal process, so the alive count starts (and
  // stays) at ~N.
  for (std::size_t i = 0; i < n; ++i) addNode(0, /*startUp=*/true, false);
  for (std::size_t i = 0; i < n; ++i) addNode(0, /*startUp=*/false, false);

  // Control group: fresh nodes all joining at controlJoinTime, then
  // churning like everyone else.
  const auto controlCount =
      static_cast<std::size_t>(std::llround(params.controlFraction * n));
  for (std::size_t i = 0; i < controlCount; ++i)
    addNode(params.controlJoinTime, /*startUp=*/true, /*isControl=*/true);

  // Birth/death processes (SYNTH-BD / SYNTH-BD2): global Poisson streams at
  // birthDeathPerDay * N per day each.
  const double bdPerHour =
      params.birthDeathPerDay * static_cast<double>(n) / 24.0;
  if (bdPerHour > 0) {
    events.push({expDuration(rng, bdPerHour), EventKind::Birth, 0});
    events.push({expDuration(rng, bdPerHour), EventKind::Death, 0});
  }

  std::vector<std::size_t> aliveList;  // indices with up==true (lazy-compacted)

  const auto closeSession = [&](NodeBuild& b, SimTime at) {
    if (at > b.sessionStart)
      b.trace.sessions.push_back({b.sessionStart, at});
    b.up = false;
  };

  while (!events.empty() && events.top().when < horizon) {
    const GenEvent ev = events.top();
    events.pop();
    switch (ev.kind) {
      case EventKind::Toggle: {
        NodeBuild& b = builds[ev.node];
        if (b.trace.death) break;  // dead nodes stop toggling
        if (b.up) {
          closeSession(b, ev.when);
        } else {
          b.up = true;
          b.sessionStart = ev.when;
        }
        events.push({ev.when + expDuration(rng, ratePerHour),
                     EventKind::Toggle, ev.node});
        break;
      }
      case EventKind::Birth: {
        addNode(ev.when, /*startUp=*/true, /*isControl=*/false);
        events.push({ev.when + expDuration(rng, bdPerHour), EventKind::Birth, 0});
        break;
      }
      case EventKind::Death: {
        // Kill a uniformly random currently-alive node (deaths are silent;
        // the victim simply never returns).
        aliveList.clear();
        for (std::size_t i = 0; i < builds.size(); ++i) {
          if (builds[i].up && !builds[i].trace.death) aliveList.push_back(i);
        }
        if (!aliveList.empty()) {
          NodeBuild& victim = builds[aliveList[rng.index(aliveList.size())]];
          closeSession(victim, ev.when);
          victim.trace.death = ev.when;
        }
        events.push({ev.when + expDuration(rng, bdPerHour), EventKind::Death, 0});
        break;
      }
    }
  }

  // Close sessions still open at the horizon.
  std::vector<NodeTrace> nodes;
  nodes.reserve(builds.size());
  for (NodeBuild& b : builds) {
    if (b.up && horizon > b.sessionStart)
      b.trace.sessions.push_back({b.sessionStart, horizon});
    nodes.push_back(std::move(b.trace));
  }
  return AvailabilityTrace(horizon, std::move(nodes));
}

AvailabilityTrace generatePlanetLabLike(const PlanetLabParams& params) {
  Rng rng(params.seed);
  std::vector<NodeTrace> nodes;
  nodes.reserve(params.nodes);

  const double cycleHours = toSeconds(params.meanCycle) / 3600.0;

  for (std::size_t i = 0; i < params.nodes; ++i) {
    // Availability mix: ~60% of hosts are highly available (0.92-0.999),
    // the rest form a flakier tail (0.55-0.92). Mean lands near 0.85,
    // consistent with published PlanetLab all-pairs-ping studies.
    const double avail = rng.chance(0.6) ? rng.uniformReal(0.92, 0.999)
                                         : rng.uniformReal(0.55, 0.92);
    const double upRate = 1.0 / (cycleHours * avail);          // per hour
    const double downRate = 1.0 / (cycleHours * (1.0 - avail));  // per hour

    NodeTrace t;
    t.id = NodeId::fromIndex(static_cast<std::uint32_t>(i));
    t.birth = 0;
    bool up = rng.chance(avail);  // stationary start
    SimTime now = 0;
    while (now < params.horizon) {
      if (up) {
        const SimTime end =
            std::min<SimTime>(params.horizon, now + expDuration(rng, upRate));
        t.sessions.push_back({now, end});
        now = end;
      } else {
        now += expDuration(rng, downRate);
      }
      up = !up;
    }
    nodes.push_back(std::move(t));
  }
  return AvailabilityTrace(params.horizon, std::move(nodes));
}

AvailabilityTrace generateOvernetLike(const OvernetParams& params) {
  SynthParams synth;
  synth.stableSize = params.stableSize;
  synth.churnPerHour = params.churnPerHour;
  synth.birthDeathPerDay = params.birthDeathPerDay;
  synth.horizon = params.horizon;
  synth.controlFraction = 0.0;
  synth.seed = params.seed;
  AvailabilityTrace t = generateSynth(synth);
  t.quantize(params.samplingGrain);
  return t;
}

}  // namespace avmon::trace
