// CSV persistence for availability traces.
//
// Format, one node per line after a header:
//
//   avmon-trace-v1,<horizon_ms>
//   <ip_u32>,<port>,<birth_ms>,<death_ms|-1>,<is_control 0|1>,s1:e1|s2:e2|...
//
// The format is plain text so real availability traces (e.g. converted
// PlanetLab all-pairs-ping data) can be dropped in without code changes.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/availability_trace.hpp"

namespace avmon::trace {

/// Writes the trace; throws std::runtime_error on I/O failure.
void saveCsv(const AvailabilityTrace& trace, std::ostream& out);
void saveCsvFile(const AvailabilityTrace& trace, const std::string& path);

/// Reads a trace; throws std::runtime_error on malformed input.
AvailabilityTrace loadCsv(std::istream& in);
AvailabilityTrace loadCsvFile(const std::string& path);

}  // namespace avmon::trace
