// Workload generators: the five availability models of the paper's
// evaluation (Section 5), all emitted as AvailabilityTrace schedules.
//
//  STAT      static network, no churn.
//  SYNTH     Poisson join/leave (exponential session/downtime), no
//            births/deaths; default churn 20%/hour of the stable size,
//            matching the Overnet-derived rate the paper targets.
//  SYNTH-BD  SYNTH plus Poisson births and silent deaths, default 20%/day.
//  SYNTH-BD2 SYNTH-BD with the birth/death rate doubled (Section 5.3).
//  PL        PlanetLab-like: substitution for the paper's all-pairs-ping
//            traces — 239 long-lived nodes with high, heterogeneous
//            availability at 1-second granularity, no births/deaths.
//  OV        Overnet-like: substitution for the Bhagwan et al. traces —
//            ~550 stable alive nodes, 20%/hour churn, births/deaths sized
//            so N_longterm after 2 days matches the paper (~1319), and all
//            transitions quantized to the traces' 20-minute sampling grain.
//
// See DESIGN.md "Substitutions" for why these preserve the evaluated
// behaviour. All generators are deterministic given their seed.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::trace {

/// Parameters for the synthetic family (STAT / SYNTH / SYNTH-BD / -BD2).
struct SynthParams {
  std::size_t stableSize = 1000;  ///< N, the stable number of alive nodes
  double churnPerHour = 0.2;      ///< per-hour fraction of N joining/leaving
  double birthDeathPerDay = 0.0;  ///< per-day fraction of N born/dying
  SimDuration horizon = 48 * kHour;

  /// Fraction of N forming the paper's control group: new nodes that all
  /// join simultaneously at `controlJoinTime` and then follow the model.
  /// (Used for STAT and SYNTH; for SYNTH-BD the control group is implicit —
  /// nodes born after the warm-up.)
  double controlFraction = 0.0;
  SimTime controlJoinTime = 1 * kHour;

  std::uint64_t seed = 1;
};

/// STAT: `stableSize` nodes up for the whole horizon (plus the optional
/// control group, which joins at controlJoinTime and never leaves).
AvailabilityTrace generateStat(const SynthParams& params);

/// SYNTH / SYNTH-BD / SYNTH-BD2 depending on birthDeathPerDay. Maintains a
/// stationary alive count of ~stableSize: the base population is
/// 2*stableSize nodes alternating exponentially distributed up and down
/// periods with per-node rate churnPerHour (so the global churn rate is
/// churnPerHour * stableSize per hour); births inject fresh nodes and
/// deaths silently remove a uniformly random alive node at matched rates.
AvailabilityTrace generateSynth(const SynthParams& params);

/// Parameters for the PlanetLab-like trace.
struct PlanetLabParams {
  std::size_t nodes = 239;  ///< the paper's PL stable size
  SimDuration horizon = 48 * kHour;
  /// Mean up/down cycle length; per-node availability sets the split.
  SimDuration meanCycle = 6 * kHour;
  std::uint64_t seed = 1;
};

/// PlanetLab-like availability: every node born at t=0, no deaths,
/// heterogeneous per-node availability (mix of highly available nodes and
/// a flakier tail, mean ≈ 0.85), exponential session/downtime lengths.
AvailabilityTrace generatePlanetLabLike(const PlanetLabParams& params);

/// Parameters for the Overnet-like trace.
struct OvernetParams {
  std::size_t stableSize = 550;  ///< the paper's OV stable size
  double churnPerHour = 0.2;
  double birthDeathPerDay = 0.2;
  SimDuration horizon = 48 * kHour;
  SimDuration samplingGrain = 20 * kMinute;  ///< measurement quantization
  std::uint64_t seed = 1;
};

/// Overnet-like availability: the SYNTH-BD engine at Overnet scale with
/// all transitions quantized to the 20-minute measurement grain.
AvailabilityTrace generateOvernetLike(const OvernetParams& params);

}  // namespace avmon::trace
