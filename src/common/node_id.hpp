// Node identity: the <IPaddress, portnumber> pair of the paper (Section 3.1).
//
// The consistency condition hashes the 6-byte wire encoding of a node id
// (4-byte big-endian IPv4 address + 2-byte big-endian port), matching the
// paper's accounting of "6 Bytes per entry" and 12-byte pair hashes.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

namespace avmon {

/// Identifies one host in the system, as an (IPv4 address, port) pair.
///
/// NodeId is a value type: cheap to copy, totally ordered, hashable, and
/// encodable to a fixed 6-byte representation used by the consistent-hash
/// monitor selection scheme.
class NodeId {
 public:
  static constexpr std::size_t kWireSize = 6;

  /// Constructs the "nil" id (0.0.0.0:0), used as a sentinel.
  constexpr NodeId() noexcept = default;

  constexpr NodeId(std::uint32_t ip, std::uint16_t port) noexcept
      : ip_(ip), port_(port) {}

  /// Convenience factory for simulations: maps a dense index to a unique
  /// synthetic address (10.x.y.z:9000+k). Indices up to 2^24-1 supported.
  static constexpr NodeId fromIndex(std::uint32_t index) noexcept {
    return NodeId(0x0A000000u | (index & 0x00FFFFFFu),
                  static_cast<std::uint16_t>(9000 + (index % 50000)));
  }

  constexpr std::uint32_t ip() const noexcept { return ip_; }
  constexpr std::uint16_t port() const noexcept { return port_; }

  constexpr bool isNil() const noexcept { return ip_ == 0 && port_ == 0; }

  /// Fixed-size wire encoding (big-endian ip, big-endian port) fed to the
  /// hash-based consistency condition.
  std::array<std::uint8_t, kWireSize> toBytes() const noexcept;

  /// Parses the encoding produced by toBytes().
  static NodeId fromBytes(const std::array<std::uint8_t, kWireSize>& b) noexcept;

  /// Renders "a.b.c.d:port" for logs and reports.
  std::string toString() const;

  friend constexpr bool operator==(const NodeId& a, const NodeId& b) noexcept {
    return a.ip_ == b.ip_ && a.port_ == b.port_;
  }
  friend constexpr bool operator!=(const NodeId& a, const NodeId& b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(const NodeId& a, const NodeId& b) noexcept {
    return a.ip_ != b.ip_ ? a.ip_ < b.ip_ : a.port_ < b.port_;
  }
  friend constexpr bool operator>(const NodeId& a, const NodeId& b) noexcept {
    return b < a;
  }
  friend constexpr bool operator<=(const NodeId& a, const NodeId& b) noexcept {
    return !(b < a);
  }
  friend constexpr bool operator>=(const NodeId& a, const NodeId& b) noexcept {
    return !(a < b);
  }

 private:
  std::uint32_t ip_ = 0;
  std::uint16_t port_ = 0;
};

/// Sorted snapshot of an unordered id set — the sanctioned way to iterate
/// one when the order matters (hash order is a function of insertion
/// history, not of the data; see the avmon_lint `unordered-iter` rule).
std::vector<NodeId> sortedIds(const std::unordered_set<NodeId>& ids);

}  // namespace avmon

template <>
struct std::hash<avmon::NodeId> {
  std::size_t operator()(const avmon::NodeId& id) const noexcept {
    // splitmix64 finalizer over the 48-bit identity; good avalanche for
    // unordered containers even with dense synthetic addresses.
    std::uint64_t x =
        (static_cast<std::uint64_t>(id.ip()) << 16) | id.port();
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
