#include "common/format_double.hpp"

#include <sstream>

namespace avmon {

std::string formatDouble(double d) {
  // Find the shortest precision whose text parses back to exactly d, so
  // canonical output prints 0.1 as "0.1" yet never loses a bit.
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << d;
    if (std::stod(out.str()) == d) return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << d;
  return out.str();
}

}  // namespace avmon
