#include "common/det_checks.hpp"

#ifdef AVMON_DET_CHECKS

#include <cstdio>
#include <cstdlib>

namespace avmon::det {

namespace internal {

TlsContext& tls() noexcept {
  thread_local TlsContext ctx;
  return ctx;
}

}  // namespace internal

[[noreturn]] void sentinelFail(const char* what, std::uint32_t ownerShard) {
  const internal::TlsContext& ctx = internal::tls();
  if (ctx.scoped) {
    std::fprintf(stderr,
                 "determinism sentinel: %s on shard %u state from a thread "
                 "holding shard %u\n",
                 what, ownerShard, ctx.shard);
  } else {
    std::fprintf(stderr,
                 "determinism sentinel: %s on shard %u state from an "
                 "unscoped thread while a window phase is running\n",
                 what, ownerShard);
  }
  std::abort();
}

}  // namespace avmon::det

#endif  // AVMON_DET_CHECKS
