#include "common/node_id.hpp"

#include <algorithm>
#include <cstdio>

namespace avmon {

std::array<std::uint8_t, NodeId::kWireSize> NodeId::toBytes() const noexcept {
  return {
      static_cast<std::uint8_t>(ip_ >> 24),
      static_cast<std::uint8_t>(ip_ >> 16),
      static_cast<std::uint8_t>(ip_ >> 8),
      static_cast<std::uint8_t>(ip_),
      static_cast<std::uint8_t>(port_ >> 8),
      static_cast<std::uint8_t>(port_),
  };
}

NodeId NodeId::fromBytes(
    const std::array<std::uint8_t, NodeId::kWireSize>& b) noexcept {
  const std::uint32_t ip = (static_cast<std::uint32_t>(b[0]) << 24) |
                           (static_cast<std::uint32_t>(b[1]) << 16) |
                           (static_cast<std::uint32_t>(b[2]) << 8) |
                           static_cast<std::uint32_t>(b[3]);
  const std::uint16_t port =
      static_cast<std::uint16_t>((b[4] << 8) | b[5]);
  return NodeId(ip, port);
}

std::string NodeId::toString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ip_ >> 24) & 0xFF,
                (ip_ >> 16) & 0xFF, (ip_ >> 8) & 0xFF, ip_ & 0xFF, port_);
  return buf;
}

std::vector<NodeId> sortedIds(const std::unordered_set<NodeId>& ids) {
  // lint:allow(unordered-iter, snapshot is sorted immediately below; this helper is the sanctioned conversion)
  std::vector<NodeId> out(ids.begin(), ids.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace avmon
