// Shortest round-tripping decimal formatter, shared by everything that
// serializes doubles into text meant to be read back (spec files, JSON
// sinks, windowed time-series). One implementation so the "shortest text
// that parses back to exactly this double" guarantee can never drift
// between writers.
#pragma once

#include <string>

namespace avmon {

/// Shortest decimal representation of `d` that std::stod parses back to
/// exactly the same double — human-readable AND bit-exact on round-trip.
std::string formatDouble(double d);

}  // namespace avmon
