// A minimal C++17 stand-in for std::span<const std::uint8_t>.
//
// The hash module's interfaces take views over byte buffers; the toolchain
// targets C++17, which lacks std::span, so this non-owning view covers the
// subset the codebase needs (data/size/iteration, implicit construction from
// contiguous byte containers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace avmon {

/// Non-owning view over a contiguous sequence of const bytes.
class ByteSpan {
 public:
  constexpr ByteSpan() noexcept = default;

  constexpr ByteSpan(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  template <std::size_t N>
  constexpr ByteSpan(const std::uint8_t (&arr)[N]) noexcept
      : data_(arr), size_(N) {}

  /// Implicit view over any contiguous container of std::uint8_t
  /// (std::array, std::vector, ...).
  template <typename C,
            typename = std::enable_if_t<std::is_same_v<
                std::remove_const_t<std::remove_pointer_t<
                    decltype(std::declval<const C&>().data())>>,
                std::uint8_t>>>
  constexpr ByteSpan(const C& container) noexcept
      : data_(container.data()), size_(container.size()) {}

  constexpr const std::uint8_t* data() const noexcept { return data_; }
  constexpr std::size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr const std::uint8_t* begin() const noexcept { return data_; }
  constexpr const std::uint8_t* end() const noexcept { return data_ + size_; }

  constexpr std::uint8_t operator[](std::size_t i) const noexcept {
    return data_[i];
  }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace avmon
