#include "common/rng.hpp"

#include <cmath>

namespace avmon {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64Next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t splitmix64Mix(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64Next(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64Next(sm);
  // A theoretical all-zero state would lock the generator at zero; splitmix64
  // cannot emit four consecutive zeros, but guard anyway for cheap safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  // Every distribution helper funnels through here, so this one check
  // covers all draws.
  AVMON_DET_CHECK(detTag, "Rng draw");
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() noexcept {
  // xoshiro256** LONG_JUMP polynomial: advances the copied state by 2^192
  // steps, giving the child a disjoint subsequence.
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  Rng child = *this;
  std::uint64_t j0 = 0, j1 = 0, j2 = 0, j3 = 0;
  for (std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        j0 ^= child.s_[0];
        j1 ^= child.s_[1];
        j2 ^= child.s_[2];
        j3 ^= child.s_[3];
      }
      (void)child();
    }
  }
  child.s_[0] = j0;
  child.s_[1] = j1;
  child.s_[2] = j2;
  child.s_[3] = j3;
  // Decorrelate the parent as well so successive fork() calls yield
  // distinct children.
  (void)(*this)();
  return child;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi==lo -> span 1
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; 1 - uniform01() is in (0, 1], so log() is finite.
  return -std::log(1.0 - uniform01()) / rate;
}

std::size_t Rng::index(std::size_t size) noexcept {
  return static_cast<std::size_t>(below(size));
}

}  // namespace avmon
