// Deterministic random-number generation for reproducible simulations.
//
// Every scenario derives all of its randomness from one seeded root Rng;
// identical seeds reproduce identical runs bit-for-bit. The generator is
// xoshiro256** (Blackman & Vigna), seeded via splitmix64 as its authors
// recommend. We implement it ourselves rather than using std::mt19937 so
// that streams can be forked cheaply (one independent stream per node)
// and so the sequence is stable across standard-library versions.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/det_checks.hpp"

namespace avmon {

/// splitmix64 step: advances the state and returns the next 64-bit output.
/// Used for seeding and as a fast stateless mixer.
std::uint64_t splitmix64Next(std::uint64_t& state) noexcept;

/// One-shot splitmix64 finalizer: a high-quality 64-bit mix of the input.
std::uint64_t splitmix64Mix(std::uint64_t x) noexcept;

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it also composes with <random>
/// distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0xA7B0C1D2E3F40516ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()() noexcept;

  /// Forks an independent child stream. The child's sequence does not
  /// overlap the parent's for any practical simulation length (uses the
  /// xoshiro256** long-jump polynomial on a copied state).
  Rng fork() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// Requires rate > 0.
  double exponential(double rate) noexcept;

  /// Uniformly chosen index into a container of the given size.
  /// Requires size > 0.
  std::size_t index(std::size_t size) noexcept;

  /// Fisher-Yates shuffles the given vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Reservoir-samples k elements from v without replacement (k may exceed
  /// v.size(), in which case a shuffled copy of all of v is returned).
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> out = v;
    shuffle(out);
    if (out.size() > k) out.resize(k);
    return out;
  }

  /// Shard-ownership tag for the determinism sentinel; expands to nothing
  /// unless AVMON_DET_CHECKS is on (the class stays trivially copyable
  /// either way — copies and forks inherit the parent's binding).
  AVMON_DET_TAG(detTag);

 private:
  std::uint64_t s_[4];
};

}  // namespace avmon
