// Debug-only shard-ownership sentinel (the dynamic half of the
// determinism guardrails; avmon_lint is the static half).
//
// The sharded simulator's bit-identical-across-shard-counts guarantee
// holds only if, while a window phase is running, every schedule/send/draw
// on shard-owned state (Simulator, Network, Rng) comes from the worker
// that owns that shard — or from a sanctioned barrier activity such as
// draining hand-off queues into a destination shard. This header makes
// that ownership discipline assertable:
//
//   * ShardedSimulator tags each shard's Simulator and Network with
//     (domain, shard) at construction; objects derived from shard state
//     (per-sender network streams, node RNGs) inherit the tag via
//     AVMON_DET_BIND_LIKE.
//   * Every hot entry point carries an AVMON_DET_CHECK. The check passes
//     when the object is untagged (plain single-threaded use), when the
//     calling thread holds the matching shard scope, when it is inside a
//     sanctioned scope (barrier/router work), or when the object's domain
//     has no window phase in flight (setup, probes between runs).
//   * On violation it prints a "determinism sentinel" diagnostic and
//     aborts — loud enough for death tests and CI.
//
// Everything compiles away unless AVMON_DET_CHECKS is defined (the
// AVMON_DET_CHECKS=ON CMake option; CI enables it under TSan). With the
// checks off, the macros expand to nothing and the tagged classes keep
// their exact untagged layout and triviality.
#pragma once

#ifdef AVMON_DET_CHECKS

#include <atomic>
#include <cstdint>

namespace avmon::det {

/// One checking domain == one ShardedSimulator world. Per-instance (not
/// global) so concurrent worlds — e.g. under ParallelScenarioRunner —
/// check against their own phase flag only.
class Domain {
 public:
  void setInPhase(bool active) noexcept {
    inPhase_.store(active, std::memory_order_release);
  }
  bool inPhase() const noexcept {
    return inPhase_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> inPhase_{false};
};

/// Prints the diagnostic (always containing "determinism sentinel") and
/// aborts.
[[noreturn]] void sentinelFail(const char* what, std::uint32_t ownerShard);

namespace internal {
struct TlsContext {
  const Domain* domain = nullptr;
  std::uint32_t shard = 0;
  bool scoped = false;  // a ShardScope is active on this thread
  int sanction = 0;     // depth of SanctionScope nesting
};
TlsContext& tls() noexcept;
}  // namespace internal

/// Ownership tag embedded in Simulator/Network/Rng. Plain members (no
/// atomics): bindings are written during setup or by the owning worker
/// itself, with thread spawn/join providing the ordering — so tagged
/// classes stay trivially copyable if they were before, and copies
/// (e.g. per-sender streams rehashing inside a container) keep their
/// binding.
class OwnerTag {
 public:
  void bind(const Domain* domain, std::uint32_t shard) noexcept {
    shard_ = shard;
    domain_ = domain;
  }
  void bindLike(const OwnerTag& other) noexcept {
    bind(other.domain_, other.shard_);
  }
  void unbind() noexcept { domain_ = nullptr; }
  bool bound() const noexcept { return domain_ != nullptr; }

  void check(const char* what) const noexcept {
    if (domain_ == nullptr) return;  // untagged: plain simulator use
    const internal::TlsContext& ctx = internal::tls();
    if (ctx.sanction > 0) return;
    if (ctx.scoped) {
      if (ctx.domain == domain_ && ctx.shard == shard_) return;
      sentinelFail(what, shard_);
    }
    // No shard scope on this thread: legal only while the object's world
    // has no window phase in flight (setup, probing between runs).
    if (!domain_->inPhase()) return;
    sentinelFail(what, shard_);
  }

 private:
  const Domain* domain_ = nullptr;
  std::uint32_t shard_ = 0;
};

/// RAII: this thread owns `shard` of `domain` for the scope's lifetime.
class ShardScope {
 public:
  ShardScope(const Domain* domain, std::uint32_t shard) noexcept
      : saved_(internal::tls()) {
    internal::TlsContext& ctx = internal::tls();
    ctx.domain = domain;
    ctx.shard = shard;
    ctx.scoped = true;
  }
  ~ShardScope() { internal::tls() = saved_; }
  ShardScope(const ShardScope&) = delete;
  ShardScope& operator=(const ShardScope&) = delete;

 private:
  internal::TlsContext saved_;
};

/// RAII: everything inside is sanctioned regardless of ownership (escape
/// hatch for deliberate cross-shard work; currently unused by the core,
/// available to tests and future routers).
class SanctionScope {
 public:
  SanctionScope() noexcept { ++internal::tls().sanction; }
  ~SanctionScope() { --internal::tls().sanction; }
  SanctionScope(const SanctionScope&) = delete;
  SanctionScope& operator=(const SanctionScope&) = delete;
};

/// RAII: marks a window phase as in flight on `domain` (set by the
/// coordinator around the parallel phases).
class PhaseScope {
 public:
  explicit PhaseScope(Domain& domain) noexcept : domain_(domain) {
    domain_.setInPhase(true);
  }
  ~PhaseScope() { domain_.setInPhase(false); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Domain& domain_;
};

}  // namespace avmon::det

#define AVMON_DET_TAG(name) ::avmon::det::OwnerTag name
#define AVMON_DET_DOMAIN(name) ::avmon::det::Domain name
#define AVMON_DET_BIND(tag, domainPtr, shard) \
  (tag).bind((domainPtr), static_cast<std::uint32_t>(shard))
#define AVMON_DET_BIND_LIKE(tag, other) (tag).bindLike(other)
#define AVMON_DET_UNBIND(tag) (tag).unbind()
#define AVMON_DET_CHECK(tag, what) (tag).check(what)
#define AVMON_DET_SHARD_SCOPE(domainPtr, shard)          \
  ::avmon::det::ShardScope avmonDetShardScope {          \
    (domainPtr), static_cast<std::uint32_t>(shard)       \
  }
#define AVMON_DET_PHASE_SCOPE(domainRef) \
  ::avmon::det::PhaseScope avmonDetPhaseScope { (domainRef) }

#else  // !AVMON_DET_CHECKS

// With the sentinel compiled out every macro vanishes; tag/domain members
// expand to nothing (a stray ';' after the member macro is legal at class
// scope) and call-site macros to a void no-op.
#define AVMON_DET_TAG(name) static_assert(true, "")
#define AVMON_DET_DOMAIN(name) static_assert(true, "")
#define AVMON_DET_BIND(tag, domainPtr, shard) ((void)0)
#define AVMON_DET_BIND_LIKE(tag, other) ((void)0)
#define AVMON_DET_UNBIND(tag) ((void)0)
#define AVMON_DET_CHECK(tag, what) ((void)0)
#define AVMON_DET_SHARD_SCOPE(domainPtr, shard) ((void)0)
#define AVMON_DET_PHASE_SCOPE(domainRef) ((void)0)

#endif  // AVMON_DET_CHECKS
