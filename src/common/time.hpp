// Simulated-time units shared by every module.
//
// All simulation timestamps are integral milliseconds from the start of a
// scenario. Integral time keeps event ordering exact and runs reproducible;
// milliseconds are fine-grained enough for the paper's second-scale metrics.
#pragma once

#include <cstdint>

namespace avmon {

/// A point in simulated time, in milliseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in milliseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMillisecond = 1;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

/// Converts a simulated duration to fractional seconds (for reporting).
constexpr double toSeconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a simulated duration to fractional minutes (for reporting).
constexpr double toMinutes(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMinute);
}

}  // namespace avmon
