// Availability-based replica placement.
//
// Godfrey, Shenker & Stoica (SIGCOMM 2006 — the paper's reference [7])
// showed that with per-node availability histories one can build "smart"
// replica-selection strategies that beat availability-agnostic ones. This
// module provides those strategies over candidate lists whose
// availabilities come from AVMON monitors (see examples/replica_selection
// and bench_app_replication).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"

namespace avmon::replication {

/// One placement candidate: a host and its (monitored) availability.
struct Candidate {
  NodeId id;
  double availability = 0.0;  ///< in [0,1], as reported by AVMON monitors
};

/// Placement strategies.
enum class Strategy {
  kRandom,          ///< availability-agnostic uniform choice
  kMostAvailable,   ///< top-R by reported availability
  kRandomAboveBar,  ///< uniform among candidates above an availability bar
};

std::string strategyName(Strategy s);

/// Chooses `r` distinct replicas from `candidates` under a strategy.
/// kRandomAboveBar uses `bar` (falling back to kRandom if fewer than r
/// candidates clear it). Returns fewer than r only if candidates are few.
std::vector<Candidate> place(const std::vector<Candidate>& candidates,
                             std::size_t r, Strategy strategy, Rng& rng,
                             double bar = 0.9);

/// P(at least one replica up) assuming independent availabilities.
double groupAvailability(const std::vector<Candidate>& replicas);

/// Smallest replica count r such that a group of nodes with availability
/// `perNode` reaches `target` group availability: the provisioning rule
///   r = ceil( log(1-target) / log(1-perNode) ).
/// Requires 0 < perNode < 1 and 0 < target < 1.
std::size_t replicasNeeded(double perNode, double target);

/// Expected number of replica *transfers* per unit time when maintaining
/// r replicas over nodes of availability `a` under churn rate
/// `failuresPerHour` per node: the repair bandwidth argument of [7]
/// (agnostic placement on flaky nodes repairs more often).
double expectedRepairsPerHour(std::size_t r, double failuresPerHour);

}  // namespace avmon::replication
