#include "replication/replica_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace avmon::replication {

std::string strategyName(Strategy s) {
  switch (s) {
    case Strategy::kRandom: return "random";
    case Strategy::kMostAvailable: return "most-available";
    case Strategy::kRandomAboveBar: return "random-above-bar";
  }
  throw std::logic_error("unreachable: bad Strategy");
}

std::vector<Candidate> place(const std::vector<Candidate>& candidates,
                             std::size_t r, Strategy strategy, Rng& rng,
                             double bar) {
  std::vector<Candidate> pool = candidates;
  switch (strategy) {
    case Strategy::kRandom:
      rng.shuffle(pool);
      break;
    case Strategy::kMostAvailable:
      std::sort(pool.begin(), pool.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.availability > b.availability;
                });
      break;
    case Strategy::kRandomAboveBar: {
      std::vector<Candidate> above;
      for (const Candidate& c : pool) {
        if (c.availability >= bar) above.push_back(c);
      }
      if (above.size() >= r) {
        pool = std::move(above);
      }
      rng.shuffle(pool);
      break;
    }
  }
  if (pool.size() > r) pool.resize(r);
  return pool;
}

double groupAvailability(const std::vector<Candidate>& replicas) {
  double allDown = 1.0;
  for (const Candidate& c : replicas) allDown *= (1.0 - c.availability);
  return 1.0 - allDown;
}

std::size_t replicasNeeded(double perNode, double target) {
  if (perNode <= 0.0 || perNode >= 1.0)
    throw std::invalid_argument("replicasNeeded: perNode must be in (0,1)");
  if (target <= 0.0 || target >= 1.0)
    throw std::invalid_argument("replicasNeeded: target must be in (0,1)");
  const double r =
      std::log(1.0 - target) / std::log(1.0 - perNode);
  return static_cast<std::size_t>(std::ceil(r));
}

double expectedRepairsPerHour(std::size_t r, double failuresPerHour) {
  if (failuresPerHour < 0)
    throw std::invalid_argument("expectedRepairsPerHour: negative rate");
  return static_cast<double>(r) * failuresPerHour;
}

}  // namespace avmon::replication
