#include "stats/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace avmon::stats {

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::print(std::ostream& out) const {
  out << "== " << title_ << " ==\n";

  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  const auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  if (!header_.empty()) grow(header_);
  for (const auto& row : rows_) grow(row);

  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << cells[i];
      if (i + 1 < cells.size())
        out << std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  out << '\n';
}

}  // namespace avmon::stats
