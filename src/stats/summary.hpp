// Streaming summary statistics (Welford's online algorithm) — every bench
// reports mean ± stddev the way the paper's error bars do.
#pragma once

#include <cstddef>
#include <limits>

namespace avmon::stats {

/// Accumulates count/mean/variance/min/max in one pass, numerically stable.
class Summary {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

  /// Merges another summary into this one (parallel Welford combine).
  void merge(const Summary& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace avmon::stats
