#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>

namespace avmon::stats {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double Cdf::fractionAtOrBelow(double x) const noexcept {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::percentile(double p) const noexcept {
  if (samples_.empty()) return 0.0;
  // !(p > 0) also catches NaN, which must not reach the float->size_t cast
  // below (undefined behavior); p >= 1 avoids ceil(p*n) rounding past n.
  if (!(p > 0.0)) return samples_.front();
  if (p >= 1.0) return samples_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  return samples_[std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  const double lo = samples_.front();
  const double hi = samples_.back();
  if (points == 1 || hi == lo) {
    out.emplace_back(hi, 1.0);
    return out;
  }
  for (std::size_t i = 0; i + 1 < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fractionAtOrBelow(x));
  }
  // Emit the endpoint exactly: lo + (hi-lo)*1.0 can round below hi, which
  // would leave the curve short of y = 1.0 when the max sample is unique.
  out.emplace_back(hi, 1.0);
  return out;
}

}  // namespace avmon::stats
