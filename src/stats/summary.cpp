#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace avmon::stats {

void Summary::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace avmon::stats
