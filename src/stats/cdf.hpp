// Empirical CDFs — half the paper's figures are CDFs across nodes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace avmon::stats {

/// Empirical cumulative distribution over a fixed sample set.
class Cdf {
 public:
  /// Takes ownership of the samples (sorted internally). Empty is allowed;
  /// all queries then return 0.
  explicit Cdf(std::vector<double> samples);

  std::size_t count() const noexcept { return samples_.size(); }

  /// Fraction of samples <= x.
  double fractionAtOrBelow(double x) const noexcept;

  /// Smallest sample s such that fractionAtOrBelow(s) >= p, for p in (0,1].
  /// p <= 0 returns the minimum sample.
  double percentile(double p) const noexcept;

  double min() const noexcept { return samples_.empty() ? 0.0 : samples_.front(); }
  double max() const noexcept { return samples_.empty() ? 0.0 : samples_.back(); }

  /// (x, F(x)) pairs at `points` evenly spaced x positions across
  /// [min, max] — the series the benches print for CDF figures.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

  const std::vector<double>& sorted() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace avmon::stats
