// Aligned-column text output for bench results: every bench prints the
// rows/series of its paper table or figure through this one printer so
// output formatting is uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace avmon::stats {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass the paper artifact id, e.g.
  /// "Figure 3: average discovery time of first monitor (minutes)".
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void setHeader(std::vector<std::string> header) { header_ = std::move(header); }
  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 3);

  void print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace avmon::stats
